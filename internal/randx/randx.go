// Package randx is the deterministic randomness substrate for the whole
// repository. Every stochastic component (batch sampling, DP noise, attack
// noise, dataset synthesis) draws from an *randx.Stream so that a run is a
// pure function of its integer seed, matching the paper's "seeds 1 to 5"
// reproducibility protocol.
//
// The generator is xoshiro256++ seeded through SplitMix64, the combination
// recommended by the xoshiro authors. Streams can be split hierarchically
// (per worker, per purpose) with Derive, giving independent sequences
// without any shared mutable state, so concurrent workers never contend.
//
// # Stream compatibility
//
// Normal (and everything layered on it: NormalVec, the dp mechanisms, the
// synthetic dataset generators) uses a 256-strip ziggurat sampler. Earlier
// revisions used the Box-Muller transform, which consumes the underlying
// uniform stream differently, so Gaussian draws — and therefore entire
// simulation trajectories — are NOT bit-compatible across that switch.
// Runs remain a pure function of their seed within any one build; only
// cross-revision bit-identity was given up. The Box-Muller sampler is kept
// as NormalBoxMuller for bit-compatibility tests against the old stream.
//
//dpbyz:deterministic
package randx

import "math"

// Stream is a deterministic pseudo-random stream. It is NOT safe for
// concurrent use; derive one stream per goroutine instead.
type Stream struct {
	s [4]uint64
	// spare caches the second Box-Muller Gaussian variate (NormalBoxMuller
	// only; the ziggurat path never touches it).
	spare    float64
	hasSpare bool
	// sampleKeys/sampleGen back Sample's stream-owned open-addressing set,
	// so steady-state batch draws never allocate. A slot is occupied only
	// when its generation stamp matches sampleEpoch, which makes clearing
	// the set between draws a single counter increment instead of a memset.
	sampleKeys  []int
	sampleStamp []uint64
	sampleEpoch uint64
}

// splitMix64 advances x by the SplitMix64 step and returns the mixed output.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Stream {
	var st Stream
	x := seed
	for i := range st.s {
		st.s[i] = splitMix64(&x)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 makes this
	// astronomically unlikely but guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

// Derive returns a new independent stream identified by the given labels,
// e.g. Derive(workerID, purposeDPNoise). The parent stream is not advanced,
// so derivation order does not matter.
func (r *Stream) Derive(labels ...uint64) *Stream {
	x := r.s[0] ^ rotl(r.s[3], 7)
	for _, l := range labels {
		x ^= splitMix64(&x) ^ (l * 0x2545f4914f6cdd1d)
		_ = splitMix64(&x)
	}
	return New(x)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// StreamState is the serializable state of a Stream: the xoshiro256++ word
// state plus the Box-Muller spare cache. It deliberately excludes Sample's
// membership table, which is a pure performance cache — the draw sequence
// does not depend on it — so a restored stream produces bit-identical draws
// without carrying the scratch.
type StreamState struct {
	S        [4]uint64 `json:"s"`
	Spare    float64   `json:"spare,omitempty"`
	HasSpare bool      `json:"hasSpare,omitempty"`
}

// State snapshots the stream. Restoring the snapshot with SetState (or
// Restore) yields a stream whose future draws are bit-identical to this
// stream's.
func (r *Stream) State() StreamState {
	return StreamState{S: r.s, Spare: r.spare, HasSpare: r.hasSpare}
}

// SetState overwrites the stream's generator state with a snapshot taken by
// State. The sample scratch is left alone: it is regenerated on demand and
// never influences the drawn values.
func (r *Stream) SetState(st StreamState) {
	r.s = st.S
	r.spare = st.Spare
	r.hasSpare = st.HasSpare
}

// Restore returns a new stream positioned at the given snapshot.
func Restore(st StreamState) *Stream {
	var r Stream
	r.SetState(st)
	return &r
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256++).
//
//dpbyz:hotpath
func (r *Stream) Uint64() uint64 {
	res := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Float64 returns a uniform float64 in [0, 1).
//
//dpbyz:hotpath
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
//
//dpbyz:hotpath
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// PermInto fills p with a uniformly random permutation of [0, len(p)) and
// returns p. It draws the same variates as Perm, without allocating.
//
//dpbyz:hotpath
func (r *Stream) PermInto(p []int) []int {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	return r.PermInto(make([]int, n))
}

// Ziggurat tables for the standard normal, following Marsaglia & Tsang
// (2000) with 256 strips of equal area zigV and rightmost edge zigR. The
// tables are built deterministically at init, so every build agrees on them.
//
// zigX[i] holds the strip x-edges in decreasing order: zigX[1] = R down to
// zigX[zigStrips] = 0, with zigX[0] = V/f(R) the widened base strip that
// also covers the tail mass. zigY[i] = f(zigX[i]) = exp(-zigX[i]²/2) are the
// corresponding heights, zigY[zigStrips] = f(0) = 1.
const (
	zigStrips = 256
	zigR      = 3.6541528853610088
	zigV      = 0.00492867323399
)

var (
	zigX [zigStrips + 1]float64
	zigY [zigStrips + 1]float64
)

func init() {
	f := math.Exp(-0.5 * zigR * zigR)
	zigX[0] = zigV / f
	zigX[1] = zigR
	zigY[0] = f
	zigY[1] = f
	for i := 2; i < zigStrips; i++ {
		zigY[i] = zigY[i-1] + zigV/zigX[i-1]
		zigX[i] = math.Sqrt(-2 * math.Log(zigY[i]))
	}
	zigX[zigStrips] = 0
	zigY[zigStrips] = 1
}

// Normal returns a standard Gaussian variate via the ziggurat method: the
// common case is one uniform draw, a table lookup and a multiply, versus
// Box-Muller's log/sqrt/sin/cos per pair. See the package comment for the
// stream-compatibility consequences.
//
//dpbyz:hotpath
func (r *Stream) Normal() float64 {
	for {
		u := r.Uint64()
		i := int(u & 0xFF)
		// Bits 11..63 as a signed 53-bit integer give a uniform in [-1, 1);
		// the low bits reused for the strip index do not overlap.
		x := float64(int64(u)>>11) * (1.0 / (1 << 52)) * zigX[i]
		if math.Abs(x) < zigX[i+1] {
			return x // inside the strip's inner rectangle (~98.8% of draws)
		}
		if i == 0 {
			return r.normalTail(x < 0)
		}
		// Wedge: accept with probability proportional to the density above
		// the inner rectangle.
		if zigY[i]+r.Float64()*(zigY[i+1]-zigY[i]) < math.Exp(-0.5*x*x) {
			return x
		}
	}
}

// normalTail samples from the Gaussian tail beyond zigR (Marsaglia's
// exponential-rejection tail method).
//
//dpbyz:hotpath
func (r *Stream) normalTail(neg bool) float64 {
	for {
		u1 := r.Float64()
		for u1 == 0 {
			u1 = r.Float64()
		}
		u2 := r.Float64()
		for u2 == 0 {
			u2 = r.Float64()
		}
		x := -math.Log(u1) * (1 / zigR)
		if -2*math.Log(u2) >= x*x {
			if neg {
				return -(zigR + x)
			}
			return zigR + x
		}
	}
}

// NormalBoxMuller returns a standard Gaussian variate via the Box-Muller
// transform (the second variate of each pair is cached). This is the
// pre-ziggurat sampler, kept so the historical uniform-stream consumption
// pattern stays testable; new code should use Normal.
func (r *Stream) NormalBoxMuller() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u float64
	for u == 0 { // avoid log(0)
		u = r.Float64()
	}
	v := r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.spare = radius * math.Sin(theta)
	r.hasSpare = true
	return radius * math.Cos(theta)
}

// NormalVec fills dst with i.i.d. N(0, sigma^2) variates and returns dst.
//
//dpbyz:hotpath
func (r *Stream) NormalVec(dst []float64, sigma float64) []float64 {
	for i := range dst {
		dst[i] = sigma * r.Normal()
	}
	return dst
}

// Laplace returns a zero-mean Laplace variate with scale b, via the inverse
// CDF: X = -b * sgn(U) * ln(1 - 2|U|) for U uniform on (-1/2, 1/2).
//
//dpbyz:hotpath
func (r *Stream) Laplace(b float64) float64 {
	u := r.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// LaplaceVec fills dst with i.i.d. Laplace(0, scale) variates and returns dst.
//
//dpbyz:hotpath
func (r *Stream) LaplaceVec(dst []float64, scale float64) []float64 {
	for i := range dst {
		dst[i] = r.Laplace(scale)
	}
	return dst
}

// Sample fills idx with a uniform sample WITHOUT replacement from [0, n).
// It panics when len(idx) > n. The membership set lives on the stream, so
// steady-state draws (the per-step batch sampling of every worker) are
// allocation-free; the drawn variates are identical to the original
// map-backed implementation.
//
//dpbyz:hotpath
func (r *Stream) Sample(idx []int, n int) {
	k := len(idx)
	if k > n {
		panic("randx: sample size exceeds population")
	}
	if k == 0 {
		return
	}
	r.ensureSampleTab(k)
	keys, stamp := r.sampleKeys, r.sampleStamp
	mask := len(keys) - 1
	r.sampleEpoch++
	epoch := r.sampleEpoch
	// Floyd's algorithm: O(k) time, O(k) extra space.
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		// Probe for t; if present, Floyd's replaces it with j (which cannot
		// be present yet). Either way the probed key is inserted at the
		// first free slot of its own probe chain.
		key := t
		s := sampleSlot(key, mask)
		for stamp[s] == epoch {
			if keys[s] == key {
				key = j
				s = sampleSlot(key, mask)
				continue
			}
			s = (s + 1) & mask
		}
		keys[s] = key
		stamp[s] = epoch
		idx[j-(n-k)] = key
	}
}

// ensureSampleTab sizes the stream's membership table for k entries at a
// load factor of at most one half.
func (r *Stream) ensureSampleTab(k int) {
	size := 4
	for size < 2*k {
		size <<= 1
	}
	if cap(r.sampleKeys) < size {
		r.sampleKeys = make([]int, size)
		r.sampleStamp = make([]uint64, size)
		r.sampleEpoch = 0
	}
	r.sampleKeys = r.sampleKeys[:size]
	r.sampleStamp = r.sampleStamp[:size]
}

// sampleSlot mixes a key into a starting probe slot.
func sampleSlot(key, mask int) int {
	h := uint64(key) * 0x9e3779b97f4a7c15
	return int(h>>33) & mask
}
