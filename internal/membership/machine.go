// Model-checked round protocol: an explicit state machine of the epoched
// parameter-server round loop, exhaustively explored for safety.
//
// This is the executable analogue of a TLA⁺ spec. The machine is the
// cross-product of the server phase (collecting within a round, committing
// at round end, advancing epochs at boundaries), per-worker lifecycle
// (offline / handshaken / crashed, driven through the real Tracker), and
// per-worker channel state (at most one round-tagged frame in flight,
// subject to the same fault classes ChanTransport injects: drop, duplicate
// and delay/reorder). Explore enumerates every interleaving of those
// events up to the configured bounds and checks three invariants in every
// reachable state:
//
//   - ledger balance: after every commit, Accepted+Missed equals the total
//     delivery slots Σ n_e over committed rounds — no slot is double
//     counted or leaked across an epoch boundary, even when duplicate or
//     stale frames race a commit;
//   - single commit per round: each round number aggregates exactly once;
//   - view ⊆ handshaken: no epoch's view ever contains a worker that did
//     not complete a handshake.
//
// The model deliberately shares transition code with production: epoch
// boundaries run Tracker.AdvanceEpoch, accept/miss bookkeeping runs
// Tracker.RecordAccept/RecordMiss, and joins run Tracker.Handshake — so
// the exploration checks the shipped membership logic, not a copy.
package membership

import (
	"fmt"
)

// ModelConfig bounds the exhaustive exploration.
type ModelConfig struct {
	// Workers is the candidate population: worker ids [0, Workers).
	Workers int
	// Rounds is the horizon: states past this many committed rounds are
	// terminal.
	Rounds int
	// Membership configures the real Tracker embedded in each state.
	Membership Config
	// LateCredit admits a frame tagged round−1 into an empty slot, the
	// PR-7 idempotent credit path. Off, such frames are discarded.
	LateCredit bool
	// MaxStates aborts a runaway exploration (0 means no limit).
	MaxStates int
}

// Frame channel-state sentinel: no frame in flight.
const noFrame = -1

// workerModel is one worker's machine-visible state.
type workerModel struct {
	// connected mirrors the transport: a crashed worker has no conn and
	// its in-flight frame is lost with it.
	connected bool
	// frame is the round tag of the (at most one) submission in flight,
	// or noFrame. Lock-step workers never have two distinct frames out.
	frame int
	// dupped marks that frame's duplicate was already delivered, bounding
	// the duplication fault to one copy per frame.
	dupped bool
	// sent is the last round this worker submitted for, so a worker
	// sends at most once per round (the protocol is one frame per round).
	sent int
}

// machineState is one explored state of the round protocol.
type machineState struct {
	tr    *Tracker
	round int
	// filled marks view members whose slot holds a submission this round.
	filled []bool
	// workers is indexed by worker id.
	workers []workerModel
	// Ledger totals across the whole run.
	accepted, missed int
	// slots is Σ n_e over committed rounds — the ledger's right-hand side.
	slots int
	// committed marks round numbers that already aggregated.
	committed []bool
	// started reports the initial cohort was admitted (epoch 0 exists).
	started bool
	// lateCredit mirrors ModelConfig.LateCredit for the deliver path.
	lateCredit bool
}

// clone deep-copies the state for branching.
func (s *machineState) clone() *machineState {
	c := &machineState{
		tr:         s.tr.Clone(),
		round:      s.round,
		filled:     append([]bool(nil), s.filled...),
		workers:    append([]workerModel(nil), s.workers...),
		accepted:   s.accepted,
		missed:     s.missed,
		slots:      s.slots,
		committed:  append([]bool(nil), s.committed...),
		started:    s.started,
		lateCredit: s.lateCredit,
	}
	return c
}

// key canonically encodes the state for the visited set.
func (s *machineState) key() string {
	buf := make([]byte, 0, 16+4*len(s.workers))
	buf = append(buf, byte(s.round), byte(s.accepted), byte(s.missed), byte(s.slots))
	if s.started {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, f := range s.filled {
		if f {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = append(buf, 0xFE)
	for _, w := range s.workers {
		b := byte(0)
		if w.connected {
			b |= 1
		}
		if w.dupped {
			b |= 2
		}
		buf = append(buf, b, byte(w.frame+2), byte(w.sent+2))
	}
	buf = append(buf, 0xFD)
	for _, c := range s.committed {
		if c {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return string(buf) + s.tr.stateKey()
}

// slot returns the view index of id, or -1 when id is not a member.
func slot(v View, id int) int {
	for i, m := range v.Members {
		if m == id {
			return i
		}
	}
	return -1
}

// checkInvariants asserts the three model-checked safety properties.
// atCommit gates the ledger-balance check to commit points, the only
// instants at which both sides of the identity are updated.
func (s *machineState) checkInvariants(atCommit bool) error {
	if atCommit && s.accepted+s.missed != s.slots {
		return fmt.Errorf("ledger imbalance at round %d: accepted %d + missed %d != slots %d",
			s.round, s.accepted, s.missed, s.slots)
	}
	v := s.tr.View()
	for _, id := range v.Members {
		if !s.tr.handshaken[id] {
			return fmt.Errorf("epoch %d view contains never-handshaken worker %d", v.Epoch, id)
		}
	}
	return nil
}

// deliver processes worker id's in-flight frame at the server: the
// round-tagged, idempotent credit path. Current-round frames from members
// fill empty slots; with LateCredit a round−1 frame fills an empty slot
// (the late-credit path); everything else — duplicates into filled slots,
// stale tags, non-members — is discarded. Exactly this decision table is
// what makes duplicate and reordered delivery safe.
func (s *machineState) deliver(id int) {
	w := &s.workers[id]
	tag := w.frame
	v := s.tr.View()
	i := slot(v, id)
	switch {
	case i < 0: // not a member (evicted or still pending): discard
	case s.filled[i]: // duplicate of an already-filled slot: discard
	case tag == s.round:
		s.filled[i] = true
		s.accepted++
	case s.lateCredit && tag == s.round-1:
		s.filled[i] = true
		s.accepted++
	default: // stale beyond the credit window: discard
	}
}

// commit ends the round: every unfilled member slot books a miss, the
// ledger's slot total grows by the view size, and a boundary advances the
// epoch through the real Tracker. Returns false when the machine stops
// (horizon reached or view collapsed — collapse is a liveness concern,
// not a safety violation, so the branch just terminates).
func (s *machineState) commit(cfg ModelConfig) (bool, error) {
	if s.committed[s.round] {
		return false, fmt.Errorf("round %d committed twice", s.round)
	}
	s.committed[s.round] = true
	v := s.tr.View()
	for i, id := range v.Members {
		if s.filled[i] {
			s.tr.RecordAccept(id)
		} else {
			s.missed++
			s.tr.RecordMiss(id)
		}
		s.filled[i] = false
	}
	s.slots += v.N()
	s.round++
	if err := s.checkInvariants(true); err != nil {
		return false, err
	}
	if s.round >= cfg.Rounds {
		return false, nil
	}
	if s.round%cfg.Membership.EpochRounds == 0 {
		nv, _, _, err := s.tr.AdvanceEpoch()
		if err != nil {
			return false, nil // view collapsed: terminal, not unsafe
		}
		s.filled = make([]bool, nv.N())
		if err := s.checkInvariants(false); err != nil {
			return false, err
		}
	} else {
		s.filled = make([]bool, v.N())
	}
	return true, nil
}

// successors enumerates every enabled transition from s. Channel faults
// (drop, duplicate, delay) and churn (join, crash) are all nondeterministic
// choices here; delay needs no explicit transition because a frame simply
// remaining in flight across a commit arrives reordered into a later round.
func (s *machineState) successors(cfg ModelConfig) ([]*machineState, error) {
	var next []*machineState
	branch := func(mut func(*machineState) (bool, error)) error {
		c := s.clone()
		keep, err := mut(c)
		if err != nil {
			return err
		}
		if err := c.checkInvariants(false); err != nil {
			return err
		}
		if keep {
			next = append(next, c)
		}
		return nil
	}

	if !s.started {
		// Gather phase: workers handshake until MinWorkers are present,
		// then the server may admit epoch 0 and start round 0.
		for id := 0; id < cfg.Workers; id++ {
			if s.workers[id].connected {
				continue
			}
			id := id
			if err := branch(func(c *machineState) (bool, error) {
				if err := c.tr.Handshake(id); err != nil {
					return false, nil // capacity: branch dies, not unsafe
				}
				c.workers[id].connected = true
				return true, nil
			}); err != nil {
				return nil, err
			}
		}
		if s.tr.Population() >= cfg.Membership.MinWorkers {
			if err := branch(func(c *machineState) (bool, error) {
				v, _, _, err := c.tr.AdvanceEpoch()
				if err != nil {
					return false, nil
				}
				c.filled = make([]bool, v.N())
				c.started = true
				return true, nil
			}); err != nil {
				return nil, err
			}
		}
		return next, nil
	}

	for id := 0; id < cfg.Workers; id++ {
		w := s.workers[id]
		id := id
		if !w.connected {
			// JOIN (or rejoin): handshake mid-run; admitted at a boundary.
			if err := branch(func(c *machineState) (bool, error) {
				if err := c.tr.Handshake(id); err != nil {
					return false, nil
				}
				c.workers[id].connected = true
				c.workers[id].frame = noFrame
				c.workers[id].dupped = false
				return true, nil
			}); err != nil {
				return nil, err
			}
			continue
		}
		// CRASH: the transport drops the worker; its in-flight frame is
		// lost with the connection.
		if err := branch(func(c *machineState) (bool, error) {
			c.tr.Disconnect(id)
			c.workers[id].connected = false
			c.workers[id].frame = noFrame
			c.workers[id].dupped = false
			return true, nil
		}); err != nil {
			return nil, err
		}
		if w.frame == noFrame {
			// SEND: a live member submits for the current round (at most
			// once per round — the protocol is lock-step).
			if slot(s.tr.View(), id) >= 0 && w.sent < s.round {
				if err := branch(func(c *machineState) (bool, error) {
					c.workers[id].frame = c.round
					c.workers[id].dupped = false
					c.workers[id].sent = c.round
					return true, nil
				}); err != nil {
					return nil, err
				}
			}
			continue
		}
		// DELIVER: the frame reaches the server and is consumed.
		if err := branch(func(c *machineState) (bool, error) {
			c.deliver(id)
			c.workers[id].frame = noFrame
			c.workers[id].dupped = false
			return true, nil
		}); err != nil {
			return nil, err
		}
		// DROP: the channel loses the frame.
		if err := branch(func(c *machineState) (bool, error) {
			c.workers[id].frame = noFrame
			c.workers[id].dupped = false
			return true, nil
		}); err != nil {
			return nil, err
		}
		// DUP: a copy is delivered while the original stays in flight —
		// the second arrival must be discarded by the idempotent path.
		// Bounded to one duplicate per frame to keep the space finite.
		if !w.dupped {
			if err := branch(func(c *machineState) (bool, error) {
				c.deliver(id)
				c.workers[id].dupped = true
				return true, nil
			}); err != nil {
				return nil, err
			}
		}
	}

	// COMMIT: the round deadline fires. It is enabled at any fill count —
	// timeouts are the protocol's fundamental nondeterminism — which
	// subsumes quorum-triggered commits at every threshold.
	if err := branch(func(c *machineState) (bool, error) {
		return c.commit(cfg)
	}); err != nil {
		return nil, err
	}
	return next, nil
}

// ExploreResult summarizes an exhaustive exploration.
type ExploreResult struct {
	// States is the number of distinct reachable states visited.
	States int
	// Transitions is the number of edges traversed.
	Transitions int
	// Commits counts commit transitions taken (a proxy for how much of
	// the horizon the exploration actually reached).
	Commits int
}

// Explore exhaustively enumerates every reachable state of the round
// protocol under cfg's bounds, checking the safety invariants in each.
// It returns the exploration size, or the first invariant violation.
func Explore(cfg ModelConfig) (ExploreResult, error) {
	if cfg.Workers < 1 || cfg.Workers > cfg.Membership.MaxWorkers {
		return ExploreResult{}, fmt.Errorf("model: workers %d outside [1, max %d]",
			cfg.Workers, cfg.Membership.MaxWorkers)
	}
	if cfg.Rounds < 1 {
		return ExploreResult{}, fmt.Errorf("model: rounds %d below 1", cfg.Rounds)
	}
	tr, err := NewTracker(cfg.Membership)
	if err != nil {
		return ExploreResult{}, err
	}
	init := &machineState{
		tr:         tr,
		workers:    make([]workerModel, cfg.Workers),
		committed:  make([]bool, cfg.Rounds),
		lateCredit: cfg.LateCredit,
	}
	for i := range init.workers {
		init.workers[i].frame = noFrame
		init.workers[i].sent = -1
	}
	var res ExploreResult
	visited := map[string]bool{init.key(): true}
	queue := []*machineState{init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		res.States++
		if cfg.MaxStates > 0 && res.States > cfg.MaxStates {
			return res, fmt.Errorf("model: exceeded %d states", cfg.MaxStates)
		}
		succ, err := s.successors(cfg)
		if err != nil {
			return res, err
		}
		for _, n := range succ {
			res.Transitions++
			if n.round > s.round {
				res.Commits++
			}
			k := n.key()
			if visited[k] {
				continue
			}
			visited[k] = true
			queue = append(queue, n)
		}
	}
	return res, nil
}
