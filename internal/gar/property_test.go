package gar

import (
	"math"
	"testing"

	"dpbyz/internal/randx"
	"dpbyz/internal/vecmath"
)

// The GAR property battery: table-driven metamorphic and adversarial
// invariants every registry rule must satisfy. Each subtest is named
// rule/property so a regression pinpoints the rule and the broken law.

// propertyNF is the battery's system size: large enough that every registry
// rule admits it (Bulyan needs n >= 4f + 3).
const (
	propertyN = 11
	propertyF = 2
	propertyD = 16
)

// batteryRules builds every registry rule at the battery size.
func batteryRules(t *testing.T, names []string) map[string]GAR {
	t.Helper()
	out := make(map[string]GAR, len(names))
	for _, name := range names {
		g, err := New(name, propertyN, propertyF)
		if err != nil {
			t.Fatalf("rule %q rejects n=%d f=%d: %v", name, propertyN, propertyF, err)
		}
		out[name] = g
	}
	return out
}

// gaussianCloud draws n unit-mean-centered Gaussian gradients with the given
// coordinate-wise spread.
func gaussianCloud(rng *randx.Stream, n, d int, sigma float64) (cloud [][]float64, mu []float64) {
	mu = rng.NormalVec(make([]float64, d), 1)
	vecmath.ScaleInPlace(1/vecmath.Norm(mu), mu)
	cloud = make([][]float64, n)
	for i := range cloud {
		// Axpy mutates its destination, so each row needs its own copy of μ.
		cloud[i] = vecmath.Axpy(sigma, rng.NormalVec(make([]float64, d), 1), vecmath.Clone(mu))
	}
	return cloud, mu
}

// Permutation invariance: a GAR must not care which worker sent which
// gradient — F(X∘π) = F(X) for every permutation π. Catches index-dependent
// tie-breaking and trim bookkeeping bugs.
func TestPropertyPermutationInvariance(t *testing.T) {
	rules := batteryRules(t, Names())
	for name, g := range rules {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 10; seed++ {
				rng := randx.New(seed)
				cloud, _ := gaussianCloud(rng, propertyN, propertyD, 0.3)
				base, err := g.Aggregate(cloud)
				if err != nil {
					t.Fatal(err)
				}
				perm := rng.Perm(propertyN)
				shuffled := make([][]float64, propertyN)
				for i, p := range perm {
					shuffled[i] = cloud[p]
				}
				got, err := g.Aggregate(shuffled)
				if err != nil {
					t.Fatal(err)
				}
				// Tolerance absorbs summation-order rounding only.
				if !vecmath.ApproxEqual(base, got, 1e-9) {
					t.Fatalf("seed %d: aggregate changed under permutation\n base %v\n perm %v",
						seed, base, got)
				}
			}
		})
	}
}

// Translation equivariance: F(X + v) = F(X) + v for a common offset v —
// aggregation happens on gradient differences, so a shared shift passes
// through untouched. Random full-dimensional offsets, per rule.
func TestPropertyTranslationEquivariance(t *testing.T) {
	rules := batteryRules(t, Names())
	for name, g := range rules {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 10; seed++ {
				rng := randx.New(seed)
				cloud, _ := gaussianCloud(rng, propertyN, propertyD, 0.3)
				shift := rng.NormalVec(make([]float64, propertyD), 2)
				base, err := g.Aggregate(cloud)
				if err != nil {
					t.Fatal(err)
				}
				shifted := make([][]float64, len(cloud))
				for i, v := range cloud {
					shifted[i] = vecmath.Add(v, shift)
				}
				got, err := g.Aggregate(shifted)
				if err != nil {
					t.Fatal(err)
				}
				if !vecmath.ApproxEqual(vecmath.Add(base, shift), got, 1e-8) {
					t.Fatalf("seed %d: aggregate not translation-equivariant", seed)
				}
			}
		})
	}
}

// Outlier clipping: for every resilient rule, one unbounded submission must
// not move the aggregate — the aggregate with the outlier at magnitude 10³
// and at 10⁹ must essentially coincide (the outlier's influence saturates),
// and both must stay near the honest mean. The non-robust average is the
// control: it MUST blow up, proving the test can fail.
func TestPropertySingleOutlierClipped(t *testing.T) {
	rules := batteryRules(t, ResilientNames())
	outlierAt := func(g GAR, cloud [][]float64, dir []float64, scale float64) []float64 {
		t.Helper()
		subs := make([][]float64, len(cloud))
		copy(subs, cloud)
		subs[0] = vecmath.Scale(scale, dir)
		agg, err := g.Aggregate(subs)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	for name, g := range rules {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				rng := randx.New(seed)
				cloud, _ := gaussianCloud(rng, propertyN, propertyD, 0.3)
				honestMean, err := vecmath.Mean(cloud[1:])
				if err != nil {
					t.Fatal(err)
				}
				dir := rng.NormalVec(make([]float64, propertyD), 1)
				vecmath.ScaleInPlace(1/vecmath.Norm(dir), dir)
				small := outlierAt(g, cloud, dir, 1e3)
				huge := outlierAt(g, cloud, dir, 1e9)
				// Saturation: 6 more orders of magnitude change nothing
				// beyond iterative-solver tolerance.
				if vecmath.Dist(small, huge) > 1e-3 {
					t.Fatalf("seed %d: outlier influence not saturated: |F(1e3) - F(1e9)| = %v",
						seed, vecmath.Dist(small, huge))
				}
				// Boundedness: the aggregate stays in the honest region.
				if dev := vecmath.Dist(huge, honestMean); dev > 1 {
					t.Fatalf("seed %d: aggregate strayed %v from the honest mean", seed, dev)
				}
			}
		})
	}
	t.Run("average-control", func(t *testing.T) {
		avg, err := NewAverage(propertyN)
		if err != nil {
			t.Fatal(err)
		}
		rng := randx.New(1)
		cloud, _ := gaussianCloud(rng, propertyN, propertyD, 0.3)
		dir := make([]float64, propertyD)
		dir[0] = 1
		subs := make([][]float64, len(cloud))
		copy(subs, cloud)
		subs[0] = vecmath.Scale(1e9, dir)
		agg, err := avg.Aggregate(subs)
		if err != nil {
			t.Fatal(err)
		}
		if vecmath.Norm(agg) < 1e6 {
			t.Error("the average absorbed an unbounded outlier — the battery's control is broken")
		}
	})
}

// byzantineFixtures are the crafted adversarial submissions of the
// empirical (α, f) check: the paper's two attack families plus the classic
// reversal, an unbounded vector, and the mimic replay.
func byzantineFixtures(cloud [][]float64, mean, std []float64) map[string][]float64 {
	return map[string][]float64{
		"alie":     vecmath.Axpy(-1.5, std, vecmath.Clone(mean)),
		"foe":      vecmath.Scale(1-1.1, mean),
		"signflip": vecmath.Scale(-1, mean),
		"huge":     vecmath.Scale(1e6, mean),
		"mimic":    vecmath.Clone(cloud[0]),
	}
}

// Empirical (α, f) resilience: with f crafted adversarial submissions among
// n − f honest Gaussian gradients in the low-variance regime, every
// resilient rule's aggregate must (1) stay within its empirical factor of
// the honest mean, measured in units of the honest spread σ√d, and (2) keep
// a positive inner product with the honest mean — the angle condition that
// makes (α, f)-resilient aggregation a descent direction. The factor table
// encodes each rule's measured constant with ~3x margin; a rule drifting
// past its factor means its filtering degraded.
func TestPropertyEmpiricalAlphaF(t *testing.T) {
	factors := map[string]float64{
		"krum":         1.5,
		"multikrum":    1.5,
		"median":       1.5,
		"trimmedmean":  1.5,
		"phocas":       1.5,
		"meamed":       1.5,
		"bulyan":       1.5,
		"mda":          1.5,
		"geomed":       1.5,
		"centeredclip": 3.0,
	}
	rules := batteryRules(t, ResilientNames())
	const sigma = 0.05
	unit := sigma * math.Sqrt(propertyD)
	for name, g := range rules {
		factor, ok := factors[name]
		if !ok {
			t.Errorf("rule %q has no empirical (α, f) factor — extend the battery table", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			worst := 0.0
			for seed := uint64(1); seed <= 10; seed++ {
				rng := randx.New(seed)
				honest, _ := gaussianCloud(rng, propertyN-propertyF, propertyD, sigma)
				mean, err := vecmath.Mean(honest)
				if err != nil {
					t.Fatal(err)
				}
				std, err := vecmath.CoordStd(honest)
				if err != nil {
					t.Fatal(err)
				}
				for attackName, crafted := range byzantineFixtures(honest, mean, std) {
					subs := make([][]float64, 0, propertyN)
					for i := 0; i < propertyF; i++ {
						subs = append(subs, crafted)
					}
					subs = append(subs, honest...)
					agg, err := g.Aggregate(subs)
					if err != nil {
						t.Fatal(err)
					}
					ratio := vecmath.Dist(agg, mean) / unit
					if ratio > worst {
						worst = ratio
					}
					if ratio > factor {
						t.Errorf("seed %d, attack %s: deviation %.3f·σ√d exceeds the rule's factor %.1f",
							seed, attackName, ratio, factor)
					}
					if vecmath.Dot(agg, mean) <= 0 {
						t.Errorf("seed %d, attack %s: aggregate lost the descent direction", seed, attackName)
					}
				}
			}
			t.Logf("worst deviation %.3f·σ√d (factor %.1f)", worst, factor)
		})
	}
}

// The battery's fixtures must themselves be sane: honest spread small
// relative to the mean (the VN regime where resilience is proven).
func TestPropertyFixtureRegime(t *testing.T) {
	rng := randx.New(1)
	honest, mu := gaussianCloud(rng, propertyN-propertyF, propertyD, 0.05)
	ratio, err := EmpiricalVNRatio(honest)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vecmath.Norm(mu)-1) > 1e-9 {
		t.Errorf("fixture mean not unit norm")
	}
	if ratio > 0.5 {
		t.Errorf("fixture VN ratio %v too large for the resilience regime", ratio)
	}
}

// Every paper (Table-1) rule must advertise a positive k_F(n, f) constant;
// the extension rules (geomed, centeredclip) have no paper-derived constant
// and must report exactly 0, and the average must not claim resilience.
func TestPropertyKFConsistency(t *testing.T) {
	noPaperKF := map[string]bool{"geomed": true, "centeredclip": true}
	for _, name := range ResilientNames() {
		g, err := New(name, propertyN, propertyF)
		if err != nil {
			t.Fatal(err)
		}
		if noPaperKF[name] {
			if g.KF() != 0 {
				t.Errorf("extension rule %q claims a paper constant KF() = %v", name, g.KF())
			}
		} else if g.KF() <= 0 {
			t.Errorf("resilient rule %q has KF() = %v, want > 0", name, g.KF())
		}
		if g.F() != propertyF {
			t.Errorf("rule %q reports f = %d, constructed with %d", name, g.F(), propertyF)
		}
	}
	avg, err := New("average", propertyN, 0)
	if err != nil {
		t.Fatal(err)
	}
	if avg.KF() != 0 {
		t.Errorf("average advertises a resilience constant %v", avg.KF())
	}
}
