package attack

import (
	"fmt"
	"math"

	"dpbyz/internal/randx"
	"dpbyz/internal/vecmath"
)

// DriftAttack is the adaptive drift attack: it accumulates the server's past
// aggregates into a decayed drift vector — the model's recent descent
// history — and each step submits the honest mean displaced AGAINST that
// persistent direction, scaled to the honest mean's norm. Where the
// stateless sign flip opposes only the current (noisy) mean, the drift
// attacker opposes the low-pass-filtered trajectory, a far more stable
// target under DP noise and heterogeneity; whatever bias leaks through the
// aggregation rule slows the accumulated direction and feeds back into the
// next displacement. Before the first observation it degrades to the
// sign-flip opening.
type DriftAttack struct {
	// Decay is the drift accumulator's momentum coefficient in [0, 1).
	Decay float64
	// Nu scales the injected displacement relative to the honest mean norm.
	Nu float64

	round int
	drift []float64
	// crafted is the reusable submission buffer.
	crafted []float64
}

// Drift attack defaults.
const (
	DefaultDriftDecay = 0.9
	DefaultDriftNu    = 1.5
)

var (
	_ Attack         = (*DriftAttack)(nil)
	_ AdaptiveAttack = (*DriftAttack)(nil)
)

// NewDrift returns the drift attack with default parameters.
func NewDrift() *DriftAttack {
	return &DriftAttack{Decay: DefaultDriftDecay, Nu: DefaultDriftNu}
}

// Name implements Attack.
func (d *DriftAttack) Name() string { return "drift" }

// Craft implements Attack: ḡ − ν·‖ḡ‖·d̂ with d̂ the unit accumulated drift
// (so the displacement opposes the descent history); before any drift
// accumulates it submits −ν·ḡ (the sign-flip opening).
func (d *DriftAttack) Craft(honest [][]float64, _ *randx.Stream) ([]float64, error) {
	if len(honest) == 0 {
		return nil, ErrNoHonestGradients
	}
	mean, err := vecmath.Mean(honest)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	nu := d.Nu
	if nu == 0 {
		nu = DefaultDriftNu
	}
	driftNorm := 0.0
	if d.drift != nil {
		driftNorm = vecmath.Norm(d.drift)
	}
	if cap(d.crafted) < len(mean) {
		d.crafted = make([]float64, len(mean))
	}
	d.crafted = d.crafted[:len(mean)]
	if driftNorm == 0 || math.IsInf(driftNorm, 0) || math.IsNaN(driftNorm) {
		for i, m := range mean {
			d.crafted[i] = -nu * m
		}
		return d.crafted, nil
	}
	scale := nu * vecmath.Norm(mean) / driftNorm
	for i, m := range mean {
		d.crafted[i] = m - scale*d.drift[i]
	}
	return d.crafted, nil
}

// Observe implements AdaptiveAttack: drift ← decay·drift + aggregate. The
// accumulated direction is the (sign-flipped) descent history, so pushing
// along +drift pulls the model back the way it came.
func (d *DriftAttack) Observe(round int, aggregate []float64, _ [][]float64) {
	d.round = round + 1
	if aggregate == nil {
		return
	}
	decay := d.Decay
	if decay == 0 {
		decay = DefaultDriftDecay
	}
	if len(d.drift) != len(aggregate) {
		d.drift = make([]float64, len(aggregate))
	}
	for i, g := range aggregate {
		d.drift[i] = decay*d.drift[i] + g
	}
}

// State implements AdaptiveAttack.
func (d *DriftAttack) State() State {
	st := State{Round: d.round}
	if d.drift != nil {
		st.Drift = vecmath.Clone(d.drift)
	}
	return st
}

// SetState implements AdaptiveAttack.
func (d *DriftAttack) SetState(st State) error {
	if st.Gain != 0 {
		return fmt.Errorf("attack: drift cannot restore gain state")
	}
	d.round = st.Round
	if st.Drift == nil {
		d.drift = nil
		return nil
	}
	d.drift = vecmath.Clone(st.Drift)
	return nil
}
