package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// The heterogeneity sweep inherits the scheduler determinism contract: the
// same grid must come out BIT-IDENTICAL at every Workers setting.
func TestHeterogeneitySweepSchedulerBitIdentical(t *testing.T) {
	run := func(workers int) []HeterogeneityPoint {
		points, err := RunHeterogeneitySweep(context.Background(), HeterogeneitySweepSpec{
			Betas:    []float64{0.2, 5},
			GARNames: []string{"mda", "trimmedmean"},
			Scale:    schedScale(),
			Sched:    Sched{Workers: workers},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return points
	}
	if serial, par := run(1), run(4); !reflect.DeepEqual(serial, par) {
		t.Fatal("heterogeneity sweep differs between serial and parallel scheduling")
	}
}

// The sweep's grid covers every (gar, beta) pair in declaration order and
// aggregates real trajectories (finite losses, accuracy measured).
func TestHeterogeneitySweepGrid(t *testing.T) {
	betas := []float64{0.3, 2}
	gars := []string{"trimmedmean", "mda"}
	points, err := RunHeterogeneitySweep(context.Background(), HeterogeneitySweepSpec{
		Betas:    betas,
		GARNames: gars,
		Scale:    schedScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(betas)*len(gars) {
		t.Fatalf("%d points for a %dx%d grid", len(points), len(gars), len(betas))
	}
	i := 0
	for _, g := range gars {
		for _, b := range betas {
			p := points[i]
			i++
			if p.GAR != g || p.Beta != b {
				t.Errorf("point %d is (%s, %v), want (%s, %v)", i-1, p.GAR, p.Beta, g, b)
			}
			if p.MinLossMean <= 0 || p.MinLossMean > 10 {
				t.Errorf("point %d min loss %v implausible", i-1, p.MinLossMean)
			}
			if p.FinalAccMean < 0 || p.FinalAccMean > 1 {
				t.Errorf("point %d accuracy %v outside [0, 1]", i-1, p.FinalAccMean)
			}
		}
	}
}

// Every heterogeneity cell is a plain serializable Spec carrying the
// Dirichlet partition, so any cell can be replayed on any backend.
func TestHeteroCellSpecIsPortable(t *testing.T) {
	sw := HeterogeneitySweepSpec{
		BatchSize:  50,
		AttackName: "drift",
		Epsilon:    PaperEpsilon,
		Scale:      schedScale(),
	}
	s := heteroCellSpec(sw, "trimmedmean", 0.3, 1)
	if err := s.Validate(); err != nil {
		t.Fatalf("hetsweep cell spec invalid: %v", err)
	}
	if s.Partition == nil || s.Partition.Name != "dirichlet" || s.Partition.Beta != 0.3 {
		t.Errorf("cell partition %+v", s.Partition)
	}
	if s.Attack == nil || s.Attack.Name != "drift" {
		t.Errorf("cell attack %+v", s.Attack)
	}
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"partition"`) {
		t.Error("serialized cell spec lost the partition field")
	}
}
