package experiments

import (
	"context"
	"testing"
)

// BenchmarkRunFigure runs the full Figure-2 condition × seed grid at
// ScaleSmall (the -smoke scale of cmd/dpbyz-experiments), the workload the
// experiment scheduler is optimized for. The serial variant pins the
// scheduler to one worker (the historical execution order); the parallel
// variant uses the GOMAXPROCS default — on a multi-core host the grid's 12
// independent cells then overlap, on a single core the two coincide. The
// results are bit-identical either way.
func BenchmarkRunFigure(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{name: "serial", workers: 1},
		{name: "parallel", workers: 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			spec := Figure2(ScaleSmall())
			spec.Sched = Sched{Workers: mode.workers}
			for i := 0; i < b.N; i++ {
				if _, err := RunFigure(context.Background(), spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
