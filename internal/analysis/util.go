package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// fileIsTest reports whether the parsed file came from a _test.go file.
func fileIsTest(p *Pass, f *ast.File) bool {
	name := filepath.Base(p.Fset.Position(f.Package).Filename)
	return strings.HasSuffix(name, "_test.go")
}

// builtinName returns the name of the builtin being called (append, make,
// new, delete, ...), or "" for non-builtin calls. Builtin identifiers resolve
// to *types.Builtin in Uses, not to nil.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}

// calleeFunc resolves the called function object of a call expression,
// looking through parentheses. It returns nil for builtins, function-typed
// variables it cannot name, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleeVar resolves a call through a package-level function-typed variable
// (e.g. the dpbyz facade's `NewGAR = gar.New` aliases) to the variable
// object, or nil.
func calleeVar(info *types.Info, call *ast.CallExpr) *types.Var {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[fun].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[fun.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// qualifiedVarName renders a package-level variable as "pkgpath.Name", or ""
// for non-package-level variables.
func qualifiedVarName(v *types.Var) string {
	if v == nil || v.Pkg() == nil {
		return ""
	}
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isSliceType reports whether t's core type is a slice.
func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isIntegerOrBool reports whether t is an integer or boolean kind (the types
// whose accumulation is order-insensitive bit-for-bit, unlike floats).
func isIntegerOrBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// namedTypeKey renders the named (or alias-resolved) type behind t as
// "pkgpath.Name", dereferencing one pointer level; "" if t is unnamed.
func namedTypeKey(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// identObj resolves an identifier to its object via Uses or Defs.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// describeStmt renders a short human label for a statement kind, for use in
// diagnostics.
func describeStmt(s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
			return "assignment to " + id.Name
		}
		return "assignment"
	case *ast.IncDecStmt:
		return "non-integer accumulation"
	case *ast.ExprStmt:
		return "call with side effects"
	case *ast.ReturnStmt:
		return "return from loop body"
	case *ast.SendStmt:
		return "channel send"
	default:
		return "order-dependent statement"
	}
}

// rootIdent returns the leftmost identifier of a selector/index/star chain
// (e.g. a for a.b[i].c), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
