package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// Event is one line of a run's telemetry stream: the JSONL wire form of one
// completed training step. Seq is the event's position in the run's log —
// the cursor a disconnected stream client resumes from — and, because every
// step emits exactly one event, always equals Step. Unmeasured metrics (NaN)
// are omitted rather than emitted as invalid JSON, mirroring spec.JSONLSink.
type Event struct {
	Seq      int      `json:"seq"`
	Step     int      `json:"step"`
	Loss     float64  `json:"loss"`
	Accuracy *float64 `json:"accuracy,omitempty"`
	VNRatio  *float64 `json:"vnRatio,omitempty"`
}

// errLogClosed rejects appends to a finished (or abandoned) run's log.
var errLogClosed = errors.New("fleet: event log closed")

// EventLog is one run's append-only telemetry log: every line lives in
// memory for replay to any number of stream cursors, and is appended to the
// run directory's events.jsonl through a buffered writer so the hot path
// pays one file write per buffer, not per step.
//
// Durability contract: buffered lines reach the disk only on Flush. The
// service flushes the log immediately before each resumable snapshot lands,
// so on any crash the on-disk log is at least as long as the on-disk
// snapshot's Step — a restart truncates the log back to exactly Step lines
// and the resumed (bit-identical) run regenerates the rest, which keeps
// every cursor position meaning the same event across the crash.
type EventLog struct {
	mu      sync.Mutex
	path    string
	lines   [][]byte // complete JSON lines, without the trailing newline
	f       *os.File
	w       *bufio.Writer
	changed chan struct{} // closed and replaced on every append and on close
	closed  bool
}

// OpenEventLog opens (creating if needed) the log at path and loads every
// complete line. A final line without its newline — a crash landed mid-write
// — is discarded from both memory and the file: the resumed run rewrites it.
func OpenEventLog(path string) (*EventLog, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("fleet: read event log %s: %w", path, err)
	}
	var lines [][]byte
	good := 0
	for good < len(data) {
		nl := bytes.IndexByte(data[good:], '\n')
		if nl < 0 {
			break // truncated final line: drop it
		}
		line := make([]byte, nl)
		copy(line, data[good:good+nl])
		lines = append(lines, line)
		good += nl + 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: open event log %s: %w", path, err)
	}
	if good != len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("fleet: drop partial line in %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("fleet: seek event log %s: %w", path, err)
	}
	return &EventLog{
		path:    path,
		lines:   lines,
		f:       f,
		w:       bufio.NewWriter(f),
		changed: make(chan struct{}),
	}, nil
}

// Append appends ev to the log and wakes every waiting stream. The log
// assigns Seq, and enforces the one-event-per-step alignment (Seq == Step)
// that cursor resumption is built on.
func (l *EventLog) Append(ev Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errLogClosed
	}
	ev.Seq = len(l.lines)
	if ev.Step != ev.Seq {
		return fmt.Errorf("fleet: event for step %d would land at log index %d", ev.Step, ev.Seq)
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("fleet: encode event: %w", err)
	}
	l.lines = append(l.lines, line)
	if _, err := l.w.Write(line); err != nil {
		return fmt.Errorf("fleet: append event log %s: %w", l.path, err)
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("fleet: append event log %s: %w", l.path, err)
	}
	l.broadcast()
	return nil
}

// broadcast wakes every reader parked on the changed channel. Callers hold mu.
func (l *EventLog) broadcast() {
	close(l.changed)
	l.changed = make(chan struct{})
}

// Len returns the number of complete events in the log.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

// Next returns every line from cursor onward, a channel that closes on the
// next append (or on close), and whether the log is closed — one atomic
// snapshot, so a reader that sees no new lines and parks on the channel
// cannot miss a wakeup. Returned lines are shared read-only; do not mutate.
func (l *EventLog) Next(cursor int) (lines [][]byte, changed <-chan struct{}, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor < len(l.lines) {
		lines = l.lines[cursor:]
	}
	return lines, l.changed, l.closed
}

// Event decodes the event at index i.
func (l *EventLog) Event(i int) (Event, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.lines) {
		return Event{}, fmt.Errorf("fleet: event index %d outside log of %d", i, len(l.lines))
	}
	var ev Event
	if err := json.Unmarshal(l.lines[i], &ev); err != nil {
		return Event{}, fmt.Errorf("fleet: decode event %d: %w", i, err)
	}
	return ev, nil
}

// Flush pushes every buffered line to the file. The service calls this
// before each snapshot write (see the durability contract above).
func (l *EventLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *EventLog) flushLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("fleet: flush event log %s: %w", l.path, err)
	}
	return nil
}

// Truncate discards every event from index n onward, in memory and on disk —
// the restart path aligning the log with a resumable snapshot's Step. The
// single truncate syscall leaves either the old or the new length, never a
// torn line.
func (l *EventLog) Truncate(n int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(l.lines) {
		return nil
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	var keep int64
	for _, line := range l.lines[:n] {
		keep += int64(len(line)) + 1
	}
	if err := l.f.Truncate(keep); err != nil {
		return fmt.Errorf("fleet: truncate event log %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(keep, io.SeekStart); err != nil {
		return fmt.Errorf("fleet: seek event log %s: %w", l.path, err)
	}
	l.lines = l.lines[:n]
	return nil
}

// Close flushes, closes the file and wakes every stream: a closed log with
// no lines past a reader's cursor means the run is over and the stream ends.
// The in-memory lines stay readable.
func (l *EventLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.broadcast()
	err := l.flushLocked()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("fleet: close event log %s: %w", l.path, cerr)
		}
		l.f = nil
	}
	return err
}

// Abandon closes the log WITHOUT flushing, discarding every buffered line —
// the crash-simulation path (Service.Kill): a real crash loses exactly the
// lines the buffer held, and the durability contract above absorbs it.
func (l *EventLog) Abandon() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.broadcast()
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
}
