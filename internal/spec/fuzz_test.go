package spec

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzParseSpec drives the strict Spec decoder with arbitrary documents: any
// input that Parse accepts must re-encode canonically and re-parse to the
// identical value (round-trip identity), and everything else must be
// rejected with an error — never a panic. This is the config-file analogue
// of the wire codec's FuzzDecodeFrame and runs next to it in the CI fuzz
// smoke step.
func FuzzParseSpec(f *testing.F) {
	if golden, err := os.ReadFile(filepath.Join("testdata", "golden_spec.json")); err == nil {
		f.Add(golden)
	}
	if b, err := fullSpec().JSON(); err == nil {
		f.Add(b)
	}
	if b, err := heteroSpec().JSON(); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"gar":{"name":"average","n":5},"steps":10,"batchSize":4,"learningRate":1,"seed":2,"data":{"n":50,"features":3}}`))
	f.Add([]byte(`{"version":1,"stepz":10}`))                        // unknown field
	f.Add([]byte(`{"version":99}`))                                  // bad version
	f.Add([]byte(`{"partition":{"name":"dirichlet","beta":1e308}}`)) // extreme number
	f.Add([]byte(`{"gar":{"name":"krum","n":-4,"f":9}}`))            // bad system size
	f.Add([]byte(`{"membership":{"minWorkers":2,"evictAfter":3}}`))  // unknown membership field
	f.Add([]byte(`{"membership":{"minWorkers":9,"maxWorkers":4,"fRatio":0.9,"epochRounds":0}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"seed":18446744073709551615}`)) // max uint64
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, doc []byte) {
		s, err := Parse(doc)
		if err != nil {
			return // graceful rejection is the contract for invalid input
		}
		// Valid documents must round-trip: canonical encode → parse →
		// identical Spec (modulo the version tag the encoder fills in).
		enc, err := s.JSON()
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		again, err := Parse(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to re-parse: %v\n%s", err, enc)
		}
		want := *s
		want.SchemaVersion = Version
		if !reflect.DeepEqual(*again, want) {
			t.Fatalf("round trip not identity:\n got %+v\nwant %+v", *again, want)
		}
	})
}
