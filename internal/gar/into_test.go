package gar

import (
	"testing"

	"dpbyz/internal/randx"
	"dpbyz/internal/vecmath"
)

// intoTestGrads builds a reproducible gradient cloud large enough for every
// registered rule at (n, f) = (13, 2) (Bulyan needs n >= 4f+3).
func intoTestGrads(d int, seed uint64) [][]float64 {
	return cloudWithOutliers(13, 2, d, 1, 0.1, 40, seed)
}

// TestAggregateIntoMatchesAggregate pins the pooled fast path to the
// allocating path bit-for-bit for every registered rule.
func TestAggregateIntoMatchesAggregate(t *testing.T) {
	const n, f, d = 13, 2, 97
	grads := intoTestGrads(d, 21)
	for _, g := range allRules(t, n, f) {
		want, err := g.Aggregate(grads)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		dst := make([]float64, d)
		if err := AggregateInto(g, dst, grads); err != nil {
			t.Fatalf("%s into: %v", g.Name(), err)
		}
		for j := range dst {
			if dst[j] != want[j] {
				t.Fatalf("%s: coordinate %d differs: %v != %v", g.Name(), j, dst[j], want[j])
			}
		}
	}
}

// TestAggregateIntoParallelBitIdentical asserts that fanning the engine out
// across workers does not change a single bit of any rule's output for
// random gradient clouds.
func TestAggregateIntoParallelBitIdentical(t *testing.T) {
	const n, f, d = 13, 2, 513
	for seed := uint64(1); seed <= 5; seed++ {
		grads := intoTestGrads(d, seed)
		for _, g := range allRules(t, n, f) {
			vecmath.SetParallelism(1)
			seq := make([]float64, d)
			errSeq := AggregateInto(g, seq, grads)

			vecmath.SetParallelism(8)
			vecmath.SetParallelGrain(1)
			par := make([]float64, d)
			errPar := AggregateInto(g, par, grads)
			vecmath.SetParallelism(0)
			vecmath.SetParallelGrain(0)

			if (errSeq == nil) != (errPar == nil) {
				t.Fatalf("%s seed %d: error mismatch: %v vs %v", g.Name(), seed, errSeq, errPar)
			}
			for j := range seq {
				if seq[j] != par[j] {
					t.Fatalf("%s seed %d: coordinate %d differs: %v != %v",
						g.Name(), seed, j, seq[j], par[j])
				}
			}
		}
	}
}

// TestAggregateIntoZeroAllocs is the allocation regression gate for the
// tentpole: on the steady state (warm pools, inputs below the parallel
// grain) no rule's AggregateInto may allocate at all.
func TestAggregateIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops entries under the race detector; alloc counts are meaningless")
	}
	// Pin the sequential path: the zero-alloc guarantee covers the inline
	// kernels (goroutine fan-out costs a few dispatch allocations, and
	// AllocsPerRun pins GOMAXPROCS=1 anyway).
	vecmath.SetParallelism(1)
	defer vecmath.SetParallelism(0)
	const n, f, d = 13, 2, 128
	grads := intoTestGrads(d, 33)
	dst := make([]float64, d)
	for _, g := range allRules(t, n, f) {
		ia, ok := g.(IntoAggregator)
		if !ok {
			t.Errorf("%s does not implement IntoAggregator", g.Name())
			continue
		}
		// Warm the scratch pools.
		for i := 0; i < 3; i++ {
			if err := ia.AggregateInto(dst, grads); err != nil {
				t.Fatalf("%s warm-up: %v", g.Name(), err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := ia.AggregateInto(dst, grads); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s.AggregateInto allocates %v objects per steady-state call", g.Name(), allocs)
		}
	}
}

// legacyGAR is a GAR without the AggregateInto fast path, exercising the
// fallback of the package-level AggregateInto helper.
type legacyGAR struct{ n int }

func (l *legacyGAR) Name() string { return "legacy" }
func (l *legacyGAR) N() int       { return l.n }
func (l *legacyGAR) F() int       { return 0 }
func (l *legacyGAR) KF() float64  { return 0 }
func (l *legacyGAR) Aggregate(grads [][]float64) ([]float64, error) {
	return vecmath.Mean(grads)
}

func TestAggregateIntoFallback(t *testing.T) {
	g := &legacyGAR{n: 4}
	grads := cloudWithOutliers(4, 0, 6, 1, 0.2, 0, 5)
	dst := make([]float64, 6)
	if err := AggregateInto(g, dst, grads); err != nil {
		t.Fatal(err)
	}
	want, err := vecmath.Mean(grads)
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.ApproxEqual(dst, want, 0) {
		t.Errorf("fallback copy = %v, want %v", dst, want)
	}
	if err := AggregateInto(g, make([]float64, 5), grads); err == nil {
		t.Error("fallback accepted a short destination")
	}
}

// TestAggregateIntoValidation checks the shared destination validation.
func TestAggregateIntoValidation(t *testing.T) {
	const n, f, d = 13, 2, 16
	grads := intoTestGrads(d, 9)
	for _, g := range allRules(t, n, f) {
		ia := g.(IntoAggregator)
		if err := ia.AggregateInto(make([]float64, d-1), grads); err == nil {
			t.Errorf("%s accepted a short destination", g.Name())
		}
		if err := ia.AggregateInto(make([]float64, d), grads[:n-1]); err == nil {
			t.Errorf("%s accepted a short gradient matrix", g.Name())
		}
	}
}

// TestAggregateIntoConcurrent hammers one rule instance from multiple
// goroutines: the pooled scratch must keep concurrent AggregateInto calls
// independent (the GAR contract promises concurrency safety).
func TestAggregateIntoConcurrent(t *testing.T) {
	const n, f, d = 13, 2, 64
	grads := intoTestGrads(d, 17)
	for _, name := range []string{"median", "krum", "mda", "phocas"} {
		g, err := New(name, n, f)
		if err != nil {
			t.Fatal(err)
		}
		want, err := g.Aggregate(grads)
		if err != nil {
			t.Fatal(err)
		}
		ia := g.(IntoAggregator)
		done := make(chan error, 8)
		for w := 0; w < 8; w++ {
			go func() {
				dst := make([]float64, d)
				for i := 0; i < 50; i++ {
					if err := ia.AggregateInto(dst, grads); err != nil {
						done <- err
						return
					}
					for j := range dst {
						if dst[j] != want[j] {
							done <- errMismatch
							return
						}
					}
				}
				done <- nil
			}()
		}
		for w := 0; w < 8; w++ {
			if err := <-done; err != nil {
				t.Fatalf("%s concurrent: %v", name, err)
			}
		}
	}
}

var errMismatch = errorString("concurrent aggregate diverged")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestRandomCloudsAggregateIntoMatchesAggregate is a broader property sweep
// across system sizes: for random (n, f, d) the two paths must agree
// bit-for-bit on every rule that admits the pair.
func TestRandomCloudsAggregateIntoMatchesAggregate(t *testing.T) {
	rng := randx.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 3 + int(rng.Uint64()%14) // 3..16
		f := int(rng.Uint64()) % (n/2 + 1)
		if f >= n {
			f = n - 1
		}
		d := 1 + int(rng.Uint64()%200)
		grads := cloudWithOutliers(n, f, d, 1, 0.3, 10, uint64(trial)+1)
		for _, name := range Names() {
			g, err := New(name, n, f)
			if err != nil {
				continue
			}
			want, err := g.Aggregate(grads)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			dst := make([]float64, d)
			if err := AggregateInto(g, dst, grads); err != nil {
				t.Fatalf("trial %d %s into: %v", trial, name, err)
			}
			for j := range dst {
				if dst[j] != want[j] {
					t.Fatalf("trial %d %s: coordinate %d differs", trial, name, j)
				}
			}
		}
	}
}
