package vecmath

import "sort"

// PartialSortAscending rearranges xs so that its k smallest values occupy
// xs[:k] in ascending order; the order of xs[k:] is unspecified. It is the
// replacement for "sort everything, read the prefix" in the Krum score
// kernel: an in-place quickselect (deterministic median-of-three pivoting —
// no randomness, so the result never depends on anything but the input)
// splits off the k smallest in O(n) expected comparisons, then only the
// k-prefix is sorted.
//
// Because the k smallest values of a multiset are the same multiset
// whichever algorithm finds them, and sort.Float64s orders equal float64
// values indistinguishably, summing xs[:k] in ascending index order after
// PartialSortAscending is bit-identical to summing the first k entries of a
// fully sorted copy.
//
//dpbyz:hotpath
func PartialSortAscending(xs []float64, k int) {
	if k <= 0 {
		return
	}
	if k > len(xs) {
		k = len(xs)
	}
	if k < len(xs) {
		quickSelect(xs, k-1)
	}
	sort.Float64s(xs[:k])
}

// quickSelect partitions xs in place so that every value in xs[:kth+1] is
// <= every value in xs[kth+1:]. Iterative Hoare partitioning; the
// median-of-three pre-ordering leaves xs[lo] <= pivot <= xs[hi], which are
// the sentinels keeping the inner scans inside the range. Ranges of a dozen
// elements or fewer finish by insertion sort.
//
//dpbyz:hotpath
func quickSelect(xs []float64, kth int) {
	lo, hi := 0, len(xs)-1 // inclusive working range containing index kth
	for hi-lo > 12 {
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		p := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		// Invariant: xs[lo..j] <= p, xs[i..hi] >= p, and every position in
		// the (possibly empty) gap (j, i) equals p.
		switch {
		case kth <= j:
			hi = j
		case kth >= i:
			lo = i
		default:
			return // kth lands in the all-equal gap: already partitioned
		}
	}
	insertionSort(xs, lo, hi+1)
}

// insertionSort sorts xs[lo:hi] ascending in place.
//
//dpbyz:hotpath
func insertionSort(xs []float64, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		x := xs[i]
		j := i - 1
		for j >= lo && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}
