// Package leakage demonstrates the data-leakage threat motivating the
// paper's privacy requirement (§1, citing Zhu et al.'s "Deep Leakage from
// Gradients"): an honest-but-curious parameter server can reconstruct
// training samples from the gradients workers send in the clear.
//
// For the paper's own model family — affine scores w·x + b under any
// per-example loss — the leak is exact and closed-form: a single example's
// gradient is ∂L/∂z · [x, 1], so dividing the feature blocks by the bias
// coordinate recovers x perfectly. The package implements this inversion
// and quantifies how worker-local DP noise (the paper's defence) destroys
// it.
package leakage

import (
	"errors"
	"fmt"
	"math"

	"dpbyz/internal/vecmath"
)

// Reconstruction is the output of a gradient-inversion attempt.
type Reconstruction struct {
	// X is the recovered feature vector.
	X []float64
	// BiasGradient is the value the inversion divided by; tiny values mean
	// the example was near the decision boundary and recovery is unstable.
	BiasGradient float64
}

// Errors returned by the inverter.
var (
	ErrGradientTooShort = errors.New("leakage: gradient has no bias coordinate")
	ErrNoSignal         = errors.New("leakage: bias gradient too small to invert")
)

// InvertAffineGradient reconstructs the training example from a
// single-example gradient of an affine-score model (bias last, the layout
// used by every linear model in this repository). The inversion is exact
// for noiseless gradients: grad = c·[x, 1] ⇒ x = grad[:d]/grad[d].
func InvertAffineGradient(grad []float64) (*Reconstruction, error) {
	if len(grad) < 2 {
		return nil, ErrGradientTooShort
	}
	bias := grad[len(grad)-1]
	if math.Abs(bias) < 1e-12 {
		return nil, fmt.Errorf("%w: |bias gradient| = %v", ErrNoSignal, math.Abs(bias))
	}
	x := make([]float64, len(grad)-1)
	for i := range x {
		x[i] = grad[i] / bias
	}
	return &Reconstruction{X: x, BiasGradient: bias}, nil
}

// ReconstructionError returns the relative L2 error ‖x̂ − x‖/‖x‖ of a
// reconstruction against the true example (∞ when the true example is the
// zero vector and the reconstruction is not).
func ReconstructionError(recovered, truth []float64) (float64, error) {
	if len(recovered) != len(truth) {
		return 0, fmt.Errorf("leakage: dim mismatch %d vs %d", len(recovered), len(truth))
	}
	num := vecmath.Dist(recovered, truth)
	den := vecmath.Norm(truth)
	if den == 0 {
		if num == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return num / den, nil
}
