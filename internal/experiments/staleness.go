package experiments

import (
	"context"
	"fmt"

	"dpbyz/internal/data"
	runspec "dpbyz/internal/spec"
)

// StalenessSweepSpec measures what bounded-staleness quorum rounds cost in
// convergence: it sweeps the per-round straggler count s — the server fires
// after n − f − s submissions, replacing the cut workers' gradients with
// zeros — for one or more aggregation rules under a fixed attack with DP
// noise on. s = 0 is the fully synchronous baseline in the same quorum code
// path, so the sweep isolates the staleness axis from everything else.
type StalenessSweepSpec struct {
	// Stragglers are the per-round straggler counts to sweep (default
	// {0, 1, 2, 3}; each must keep the quorum n − f − s ≥ 1).
	Stragglers []int
	// Late selects the late-frame policy: "credit" (default) folds a frame
	// that is exactly one round stale into the next round, "discard" drops
	// every late frame.
	Late string
	// GARNames are the rules to compare at each s (default {"mda"}).
	GARNames []string
	// BatchSize defaults to 50 (the Fig. 2 batch).
	BatchSize int
	// AttackName defaults to "alie".
	AttackName string
	// Epsilon is the per-step DP budget (default PaperEpsilon).
	Epsilon float64
	Scale   Scale
	// Sched configures the (gar, s, seed) cell scheduler; results are
	// bit-identical at every Workers setting.
	Sched Sched
}

// StalenessPoint is one (gar, s) sweep measurement aggregated over seeds.
// The delivery accounting is summed across seeds and satisfies
// Accepted + Missed == seeds × n × steps exactly.
type StalenessPoint struct {
	GAR          string
	Stragglers   int
	MinLossMean  float64
	FinalAccMean float64
	FinalAccStd  float64
	Accepted     int
	Missed       int
	Discarded    int
	Credited     int
}

// staleCellSpec builds the serializable Spec of one (gar, s, seed) cell: the
// Fig. 2 hyperparameters with the staleness axis riding on top, so any cell
// can be exported and replayed on any backend unchanged.
func staleCellSpec(sw StalenessSweepSpec, garName string, stragglers, seed int) runspec.Spec {
	fig := FigureSpec{ID: "stalesweep", BatchSize: sw.BatchSize, Epsilon: sw.Epsilon, Scale: sw.Scale}
	cond := Condition{Label: sw.AttackName + "+dp", AttackName: sw.AttackName, DP: true}
	s := CellSpec(fig, cond, seed)
	s.Name = fmt.Sprintf("stalesweep/%s/s=%d", garName, stragglers)
	s.GAR = runspec.GARSpec{Name: garName, N: PaperWorkers, F: PaperByzantine}
	s.Staleness = &runspec.StalenessSpec{Stragglers: stragglers, Late: sw.Late}
	return s
}

// RunStalenessSweep executes the s × GAR grid across the configured seeds on
// the deterministic cell scheduler. Per-seed datasets are built once and
// shared read-only across every (gar, s) condition. Results are
// BIT-IDENTICAL at every Sched.Workers setting.
func RunStalenessSweep(ctx context.Context, sw StalenessSweepSpec) ([]StalenessPoint, error) {
	if len(sw.Stragglers) == 0 {
		sw.Stragglers = []int{0, 1, 2, 3}
	}
	if sw.Late == "" {
		sw.Late = "credit"
	}
	if len(sw.GARNames) == 0 {
		sw.GARNames = []string{"mda"}
	}
	if sw.BatchSize == 0 {
		sw.BatchSize = 50
	}
	if sw.AttackName == "" {
		sw.AttackName = "alie"
	}
	if sw.Epsilon == 0 {
		sw.Epsilon = PaperEpsilon
	}
	for _, s := range sw.Stragglers {
		if q := PaperWorkers - PaperByzantine - s; s < 0 || q < 1 {
			return nil, fmt.Errorf("experiments: stalesweep s=%d leaves quorum %d (need >= 1)", s, q)
		}
	}
	trainN := sw.Scale.datasetSize() * data.PhishingTrainSize / data.PhishingSize
	base := FigureSpec{ID: "stalesweep", BatchSize: sw.BatchSize, Epsilon: sw.Epsilon, Scale: sw.Scale}
	inputs, err := buildSeedInputs(base, trainN)
	if err != nil {
		return nil, err
	}

	seeds := sw.Scale.seeds()
	conds := len(sw.GARNames) * len(sw.Stragglers)
	runs := make([]cellRun, conds*seeds)
	stats := make([]runspec.ClusterStats, conds*seeds)
	inner := resolveWorkers(sw.Sched) == 1
	err = runGrid(ctx, sw.Sched, len(runs),
		func(t int) string {
			ci, si := t/seeds, t%seeds
			return fmt.Sprintf("%s s=%d seed %d",
				sw.GARNames[ci/len(sw.Stragglers)], sw.Stragglers[ci%len(sw.Stragglers)], si+1)
		},
		func(ctx context.Context, t int) error {
			ci, si := t/seeds, t%seeds
			garName := sw.GARNames[ci/len(sw.Stragglers)]
			stragglers := sw.Stragglers[ci%len(sw.Stragglers)]
			s := staleCellSpec(sw, garName, stragglers, si+1)
			opts := []runspec.Option{runspec.WithDatasets(inputs[si].train, inputs[si].test)}
			if inner {
				opts = append(opts, runspec.WithParallel())
			}
			res, err := (&runspec.LocalBackend{}).Run(ctx, s, opts...)
			if err != nil {
				return fmt.Errorf("experiments: stalesweep %s s=%d: %w", garName, stragglers, err)
			}
			minLoss, minStep := res.History.MinLoss()
			runs[t] = cellRun{history: res.History, minLoss: minLoss, minStep: minStep}
			stats[t] = *res.Cluster
			return nil
		})
	if err != nil {
		return nil, err
	}

	out := make([]StalenessPoint, 0, conds)
	for ci := 0; ci < conds; ci++ {
		garName := sw.GARNames[ci/len(sw.Stragglers)]
		stragglers := sw.Stragglers[ci%len(sw.Stragglers)]
		cond := Condition{Label: fmt.Sprintf("%s/s=%d", garName, stragglers), AttackName: sw.AttackName, DP: true}
		cell, err := aggregateCell(cond, runs[ci*seeds:(ci+1)*seeds])
		if err != nil {
			return nil, fmt.Errorf("experiments: stalesweep %s s=%d: %w", garName, stragglers, err)
		}
		p := StalenessPoint{
			GAR:          garName,
			Stragglers:   stragglers,
			MinLossMean:  cell.MinLossMean,
			FinalAccMean: cell.FinalAccMean,
			FinalAccStd:  cell.FinalAccStd,
		}
		for si := 0; si < seeds; si++ {
			st := stats[ci*seeds+si]
			p.Accepted += st.Accepted
			p.Missed += st.Missed
			p.Discarded += st.Discarded
			p.Credited += st.Credited
		}
		out = append(out, p)
	}
	return out, nil
}
