// Package spec defines the one serializable run description — Spec — that
// every execution surface of the repository consumes, and the Backend
// interface that executes it.
//
// A Spec references models, aggregation rules, attacks and DP mechanisms by
// their registry names plus numeric parameters, never by live objects, so
// the same JSON document can drive the in-process simulator
// (LocalBackend), an in-process distributed cluster over a ChanTransport or
// a real TCP deployment (ClusterBackend, ServeSpec/JoinSpec), and the
// experiment grids of internal/experiments. This mirrors the separation the
// self-stabilizing-channels literature argues for: the protocol description
// is one object; the medium it runs over is a pluggable backend.
//
// JSON encoding is strict: unknown fields are rejected at decode time and
// the document carries a schema version tag, so a spec written today keeps
// meaning the same run tomorrow.
package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"dpbyz/internal/attack"
	"dpbyz/internal/data"
	"dpbyz/internal/dp"
	"dpbyz/internal/gar"
	"dpbyz/internal/membership"
	"dpbyz/internal/partition"
)

// Version is the Spec schema version; bump on breaking change.
const Version = 1

// Spec fully describes one training run: data, model, aggregation, threat
// model, privacy mechanism and the optimization hyperparameters. The zero
// value is not runnable; populate at least Model, GAR, Steps, BatchSize and
// LearningRate. Every field is a value — a Spec round-trips through JSON
// losslessly and two runs of the same Spec on the same backend are
// bit-identical.
type Spec struct {
	// SchemaVersion is the Spec schema version. Zero means "current"; any
	// other value must equal Version.
	SchemaVersion int `json:"version"`
	// Name optionally labels the run in logs and reports.
	Name string `json:"name,omitempty"`

	// Data describes the dataset and its train/test split.
	Data DataSpec `json:"data"`
	// Partition, when non-nil, distributes the training split across the
	// GAR.N workers with the named deterministic partitioner — the
	// heterogeneous-data axis. Absent (or "iid") keeps the historical IID
	// behaviour: every worker samples the full training split.
	Partition *PartitionSpec `json:"partition,omitempty"`
	// Model references the learning task by registry name.
	Model ModelSpec `json:"model"`
	// GAR references the aggregation rule by registry name, with the system
	// size (n, f).
	GAR GARSpec `json:"gar"`
	// Topology, when non-nil, selects the server's aggregation topology:
	// "bucketed" deals the workers into seed-derived buckets, averages
	// within each bucket and runs the named GAR over the bucket means —
	// cutting the quadratic rules from O(n²·d) to O((n/s)²·d). Absent (or
	// "flat") aggregates all n submissions directly.
	Topology *TopologySpec `json:"topology,omitempty"`
	// Staleness, when non-nil, enables bounded-staleness quorum rounds: the
	// server fires the aggregate once n − f − stragglers submissions arrive,
	// and one-round-late frames are credited to the next round or discarded.
	Staleness *StalenessSpec `json:"staleness,omitempty"`
	// Membership, when non-nil, enables epoched membership: the cluster
	// server re-derives the worker view, f_e = ⌊fRatio·n_e⌋ and the
	// aggregation rule every epochRounds rounds, admitting joins and
	// evicting crashed or silent workers at epoch boundaries. GAR.N is the
	// initial cohort and must lie in [minWorkers, maxWorkers]; GAR.F must
	// equal ⌊fRatio·GAR.N⌋ so the declared rule matches epoch 0. The local
	// backend mirrors the deterministic half on its fixed cohort (epoch
	// scheduling, per-epoch GAR re-materialization, per-epoch ledgers).
	Membership *MembershipSpec `json:"membership,omitempty"`
	// Attack, when non-nil, makes the first GAR.F workers Byzantine with the
	// named attack.
	Attack *AttackSpec `json:"attack,omitempty"`
	// Mechanism, when non-nil, injects worker-local DP noise with the named
	// mechanism, calibrated from ClipNorm and BatchSize.
	Mechanism *MechanismSpec `json:"mechanism,omitempty"`

	// Steps is the number of synchronous SGD steps.
	Steps int `json:"steps"`
	// BatchSize is each worker's per-step sample size b.
	BatchSize int `json:"batchSize"`
	// LearningRate is the fixed step size γ.
	LearningRate float64 `json:"learningRate"`
	// Momentum is the server-side momentum coefficient. Use at most one of
	// Momentum and WorkerMomentum.
	Momentum float64 `json:"momentum,omitempty"`
	// WorkerMomentum is the worker-side momentum coefficient (the paper's
	// distributed-momentum pipeline).
	WorkerMomentum float64 `json:"workerMomentum,omitempty"`
	// MomentumPostNoise selects the theory-faithful worker ordering
	// (per-sample clip → noise → momentum); see simulate.Config.
	MomentumPostNoise bool `json:"momentumPostNoise,omitempty"`
	// ClipNorm is the gradient clipping bound G_max; zero disables clipping.
	ClipNorm float64 `json:"clipNorm,omitempty"`
	// Seed drives all randomness of the run.
	Seed uint64 `json:"seed"`
	// AccuracyEvery measures test accuracy every k steps (0 disables; only
	// the local backend can measure it — the networked server holds no data).
	AccuracyEvery int `json:"accuracyEvery,omitempty"`
	// VNRatioEvery records the empirical VN ratio every k steps (0 disables;
	// local backend only).
	VNRatioEvery int `json:"vnRatioEvery,omitempty"`
}

// DataSpec describes the dataset by source name and generation parameters.
type DataSpec struct {
	// Source is "synthetic-phishing" (default), "two-gaussians" or "libsvm".
	Source string `json:"source,omitempty"`
	// N is the dataset size (default: the phishing dataset's 11055).
	N int `json:"n,omitempty"`
	// Features is the feature dimension (default: the phishing 68).
	Features int `json:"features,omitempty"`
	// Seed drives dataset synthesis and the split (0 means the run Seed).
	Seed uint64 `json:"seed,omitempty"`
	// Path is the LIBSVM file for Source "libsvm".
	Path string `json:"path,omitempty"`
	// TrainN is the train-split size (default: the paper's 8400/11055
	// proportion of N).
	TrainN int `json:"trainN,omitempty"`
	// Separation is the class-mean distance for "two-gaussians" (default 2).
	Separation float64 `json:"separation,omitempty"`
}

// PartitionSpec references a dataset partitioner by registry name. Exactly
// the parameters the named partitioner consumes need to be set; the zero
// values select the partitioner's documented defaults.
type PartitionSpec struct {
	// Name is a partition registry name (see partition.Names): "iid",
	// "dirichlet", "shard" or "quantity".
	Name string `json:"name"`
	// Beta is the Dirichlet concentration β ("dirichlet"; smaller is more
	// label-skewed; default partition.DefaultBeta).
	Beta float64 `json:"beta,omitempty"`
	// Shards is the label-sorted shard count per worker ("shard"; default
	// partition.DefaultShards).
	Shards int `json:"shards,omitempty"`
	// Alpha is the power-law exponent of the per-worker sample counts
	// ("quantity"; default partition.DefaultAlpha).
	Alpha float64 `json:"alpha,omitempty"`
	// Seed drives the partition assignment (0 means the data seed), so the
	// same scenario can be re-dealt without changing the training streams.
	Seed uint64 `json:"seed,omitempty"`
}

// ModelSpec references a learning task by name.
type ModelSpec struct {
	// Name is "logistic-mse" (default), "logistic-nll", "linear",
	// "mean-estimation" or "mlp".
	Name string `json:"name,omitempty"`
	// Hidden is the MLP hidden width (required for "mlp").
	Hidden int `json:"hidden,omitempty"`
}

// GARSpec references an aggregation rule by registry name for (n, f).
type GARSpec struct {
	// Name is a gar registry name (see gar.Names).
	Name string `json:"name"`
	// N is the total number of workers.
	N int `json:"n"`
	// F is the number of Byzantine workers the rule must tolerate.
	F int `json:"f"`
	// Kernel selects the Krum-family kernel implementation: "exact" (the
	// default) runs the full pairwise pass; "sketched" shortlists
	// candidates from JL sketch distances and re-checks them exactly;
	// "incremental" maintains drift-bounded distance bounds across rounds
	// and is provably bit-identical to "exact". Non-exact kernels require
	// a rule gar.SketchSupported reports true for, and do not compose
	// with the bucketed topology (buckets are already few).
	Kernel string `json:"kernel,omitempty"`
	// SketchDim is the JL sketch dimension (0 selects
	// gar.DefaultSketchDim); only valid with kernel "sketched".
	SketchDim int `json:"sketchDim,omitempty"`
	// SketchSeed fixes the deterministic sketch transform (0 means the
	// run seed); only valid with kernel "sketched".
	SketchSeed uint64 `json:"sketchSeed,omitempty"`
}

// kernel returns the kernel implementation name, defaulting to "exact".
func (g *GARSpec) kernel() string {
	if g.Kernel == "" {
		return "exact"
	}
	return g.Kernel
}

// sketchOptions builds the gar.SketchOptions the kernel knob selects.
func (g *GARSpec) sketchOptions(runSeed uint64) gar.SketchOptions {
	seed := g.SketchSeed
	if seed == 0 {
		seed = runSeed
	}
	return gar.SketchOptions{
		SketchDim:   g.SketchDim,
		Seed:        seed,
		Incremental: g.kernel() == "incremental",
	}
}

// TopologySpec selects the aggregation topology.
type TopologySpec struct {
	// Name is "flat" (default) or "bucketed".
	Name string `json:"name"`
	// BucketSize is the bucket width s for "bucketed" (0 selects
	// gar.DefaultBucketSize). The wrapped rule runs over ⌈n/s⌉ bucket
	// means and must satisfy its own n-vs-f constraint at that count.
	BucketSize int `json:"bucketSize,omitempty"`
	// Seed drives the deterministic worker→bucket deal (0 means the run
	// Seed), so the same scenario can be re-dealt without changing the
	// training streams.
	Seed uint64 `json:"seed,omitempty"`
}

// StalenessSpec enables bounded-staleness quorum rounds.
type StalenessSpec struct {
	// Stragglers is the per-round straggler budget s: the round commits
	// once quorum = n − f − s submissions have arrived. It must leave a
	// positive quorum.
	Stragglers int `json:"stragglers"`
	// Late selects the fate of a frame arriving exactly one round late:
	// "credit" (default) accepts it into the current round when the
	// sender's slot is empty; "discard" drops it. Older frames are always
	// discarded.
	Late string `json:"late,omitempty"`
}

// MembershipSpec enables epoched membership (churn tolerance).
type MembershipSpec struct {
	// MinWorkers is the population floor: the run starts once this many
	// workers joined and aborts if a boundary would leave fewer live.
	MinWorkers int `json:"minWorkers"`
	// MaxWorkers caps the population and the worker-id range [0, MaxWorkers).
	MaxWorkers int `json:"maxWorkers"`
	// FRatio derives each epoch's Byzantine allowance f_e = ⌊fRatio·n_e⌋.
	FRatio float64 `json:"fRatio"`
	// EpochRounds is the epoch boundary spacing in rounds.
	EpochRounds int `json:"epochRounds"`
}

// AttackSpec references a Byzantine attack by registry name.
type AttackSpec struct {
	// Name is an attack registry name (see attack.Names).
	Name string `json:"name"`
}

// MechanismSpec references a DP mechanism by registry name with its budget.
type MechanismSpec struct {
	// Name is a dp registry name (see dp.Names): "gaussian" or "laplace".
	Name string `json:"name"`
	// Epsilon and Delta are the per-step budget. Laplace uses only Epsilon.
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	// Sigma, when positive, sets the noise scale directly instead of
	// calibrating it from the budget.
	Sigma float64 `json:"sigma,omitempty"`
}

// Spec validation errors, matchable with errors.Is.
var (
	ErrBadSpecVersion = errors.New("spec: unsupported spec version")
	ErrUnknownField   = errors.New("spec: unknown field")
)

// UnmarshalJSON decodes strictly: any field the schema does not define is an
// error, so typos in config files fail loudly instead of silently running a
// different experiment.
func (s *Spec) UnmarshalJSON(b []byte) error {
	type plain Spec // drop methods to avoid recursing into this decoder
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var p plain
	if err := dec.Decode(&p); err != nil {
		if bytes.Contains([]byte(err.Error()), []byte("unknown field")) {
			return fmt.Errorf("%w: %v", ErrUnknownField, err)
		}
		return err
	}
	*s = Spec(p)
	return nil
}

// Parse decodes and validates a Spec from JSON.
func Parse(b []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a Spec from a JSON file.
func Load(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: read %s: %w", path, err)
	}
	s, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", path, err)
	}
	return s, nil
}

// JSON returns the canonical indented encoding with the version tag filled.
func (s Spec) JSON() ([]byte, error) {
	s.SchemaVersion = Version
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Save writes the canonical encoding to path.
func (s Spec) Save(path string) error {
	b, err := s.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("spec: write %s: %w", path, err)
	}
	return nil
}

// Defaulting accessors: the JSON stays minimal (zero fields round-trip as
// absent) and the defaults live in exactly one place.

func (d DataSpec) source() string {
	if d.Source == "" {
		return "synthetic-phishing"
	}
	return d.Source
}

func (d DataSpec) n() int {
	if d.N > 0 {
		return d.N
	}
	return data.PhishingSize
}

func (d DataSpec) features() int {
	if d.Features > 0 {
		return d.Features
	}
	return data.PhishingFeatures
}

func (d DataSpec) seed(runSeed uint64) uint64 {
	if d.Seed != 0 {
		return d.Seed
	}
	return runSeed
}

func (d DataSpec) separation() float64 {
	if d.Separation > 0 {
		return d.Separation
	}
	return 2
}

func (m ModelSpec) name() string {
	if m.Name == "" {
		return "logistic-mse"
	}
	return m.Name
}

func (t *TopologySpec) name() string {
	if t == nil || t.Name == "" {
		return "flat"
	}
	return t.Name
}

func (t *TopologySpec) seed(runSeed uint64) uint64 {
	if t.Seed != 0 {
		return t.Seed
	}
	return runSeed
}

func (st *StalenessSpec) late() string {
	if st == nil || st.Late == "" {
		return "credit"
	}
	return st.Late
}

// Quorum returns the bounded-staleness commit threshold n − f − stragglers,
// or 0 when the Spec is fully synchronous.
func (s *Spec) Quorum() int {
	if s.Staleness == nil {
		return 0
	}
	return s.GAR.N - s.GAR.F - s.Staleness.Stragglers
}

// NewGARFactory returns the (n, f) → aggregation-rule constructor the
// epoched-membership modes re-materialize at every boundary, honoring the
// Spec's GAR name and topology. The factory is deterministic: the bucketed
// deal reuses the Spec's topology seed, so the same (n, f) always yields an
// equivalent rule — the property resume bit-identity rests on.
func (s *Spec) NewGARFactory() func(n, f int) (gar.GAR, error) {
	name := s.GAR.Name
	if s.Topology.name() == "bucketed" {
		size, seed := s.Topology.BucketSize, s.Topology.seed(s.Seed)
		return func(n, f int) (gar.GAR, error) {
			return gar.NewBucketed(name, n, f, size, seed)
		}
	}
	if s.GAR.kernel() != "exact" {
		opt := s.GAR.sketchOptions(s.Seed)
		return func(n, f int) (gar.GAR, error) {
			return gar.NewSketched(name, n, f, opt)
		}
	}
	return func(n, f int) (gar.GAR, error) {
		return gar.New(name, n, f)
	}
}

// Validate checks the Spec for structural errors without materializing it.
// Registry names are resolved, so an unknown GAR/attack/mechanism/model name
// fails here rather than mid-run.
func (s *Spec) Validate() error {
	if s.SchemaVersion != 0 && s.SchemaVersion != Version {
		return fmt.Errorf("%w: %d (want %d)", ErrBadSpecVersion, s.SchemaVersion, Version)
	}
	switch src := s.Data.source(); src {
	case "synthetic-phishing", "two-gaussians":
	case "libsvm":
		if s.Data.Path == "" {
			return errors.New("spec: libsvm source needs data.path")
		}
	default:
		return fmt.Errorf("spec: unknown data source %q", src)
	}
	switch name := s.Model.name(); name {
	case "logistic-mse", "logistic-nll", "linear", "mean-estimation":
	case "mlp":
		if s.Model.Hidden <= 0 {
			return fmt.Errorf("spec: mlp needs a positive hidden width, got %d", s.Model.Hidden)
		}
	default:
		return fmt.Errorf("spec: unknown model %q", name)
	}
	if s.GAR.Name == "" {
		return errors.New("spec: missing gar.name")
	}
	switch k := s.GAR.kernel(); k {
	case "exact":
		if s.GAR.SketchDim != 0 || s.GAR.SketchSeed != 0 {
			return fmt.Errorf("spec: gar.sketchDim/sketchSeed need kernel \"sketched\", not %q", k)
		}
		if _, err := gar.New(s.GAR.Name, s.GAR.N, s.GAR.F); err != nil {
			return err
		}
	case "sketched", "incremental":
		if s.Topology.name() == "bucketed" {
			return fmt.Errorf("spec: gar kernel %q does not compose with the bucketed topology "+
				"(buckets are already few; sketch the flat rule instead)", k)
		}
		if k == "incremental" && (s.GAR.SketchDim != 0 || s.GAR.SketchSeed != 0) {
			return fmt.Errorf("spec: gar.sketchDim/sketchSeed need kernel \"sketched\" " +
				"(the incremental kernel has no sketch pass)")
		}
		// Constructing the wrapper validates the inner rule's own n-vs-f
		// constraint and its kernel support.
		if _, err := gar.NewSketched(s.GAR.Name, s.GAR.N, s.GAR.F, s.GAR.sketchOptions(s.Seed)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("spec: unknown gar kernel %q", k)
	}
	switch name := s.Topology.name(); name {
	case "flat":
	case "bucketed":
		// Constructing the wrapper validates the inner rule's n-vs-f
		// constraint at the bucket count ⌈n/s⌉.
		if _, err := gar.NewBucketed(s.GAR.Name, s.GAR.N, s.GAR.F,
			s.Topology.BucketSize, s.Topology.seed(s.Seed)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("spec: unknown topology %q", name)
	}
	if s.Staleness != nil {
		if s.Staleness.Stragglers < 0 {
			return fmt.Errorf("spec: negative staleness stragglers %d", s.Staleness.Stragglers)
		}
		if q := s.Quorum(); q < 1 {
			return fmt.Errorf("spec: staleness quorum n − f − stragglers = %d must be positive", q)
		}
		switch late := s.Staleness.late(); late {
		case "credit", "discard":
		default:
			return fmt.Errorf("spec: unknown staleness late policy %q", late)
		}
	}
	if m := s.Membership; m != nil {
		if err := (membership.Config{
			MinWorkers:  m.MinWorkers,
			MaxWorkers:  m.MaxWorkers,
			FRatio:      m.FRatio,
			EpochRounds: m.EpochRounds,
		}).Validate(); err != nil {
			return err
		}
		if s.GAR.N < m.MinWorkers || s.GAR.N > m.MaxWorkers {
			return fmt.Errorf("spec: gar.n %d outside membership [%d, %d]",
				s.GAR.N, m.MinWorkers, m.MaxWorkers)
		}
		if f := int(m.FRatio*float64(s.GAR.N) + 1e-9); f != s.GAR.F {
			return fmt.Errorf("spec: membership fRatio %v derives f=%d at n=%d, but gar.f is %d",
				m.FRatio, f, s.GAR.N, s.GAR.F)
		}
	}
	if s.Partition != nil {
		if _, err := partition.New(s.Partition.Name); err != nil {
			return err
		}
		if s.Partition.Beta < 0 {
			return fmt.Errorf("spec: negative partition beta %v", s.Partition.Beta)
		}
		if s.Partition.Shards < 0 {
			return fmt.Errorf("spec: negative partition shards %d", s.Partition.Shards)
		}
		if s.Partition.Alpha < 0 {
			return fmt.Errorf("spec: negative partition alpha %v", s.Partition.Alpha)
		}
	}
	if s.Attack != nil {
		if _, err := attack.New(s.Attack.Name); err != nil {
			return err
		}
		if s.GAR.F <= 0 {
			return errors.New("spec: attack configured but gar.f is 0")
		}
	}
	if s.Mechanism != nil {
		if !nameKnown(dp.Names(), s.Mechanism.Name) {
			return fmt.Errorf("spec: unknown mechanism %q (known: %v)", s.Mechanism.Name, dp.Names())
		}
		if s.Mechanism.Sigma <= 0 && s.ClipNorm <= 0 {
			return errors.New("spec: mechanism calibration needs clipNorm (or an explicit sigma)")
		}
	}
	if s.Steps <= 0 {
		return fmt.Errorf("spec: non-positive steps %d", s.Steps)
	}
	if s.BatchSize <= 0 {
		return fmt.Errorf("spec: non-positive batch size %d", s.BatchSize)
	}
	if s.LearningRate <= 0 {
		return fmt.Errorf("spec: non-positive learning rate %v", s.LearningRate)
	}
	if s.Momentum > 0 && s.WorkerMomentum > 0 {
		return errors.New("spec: use either momentum or workerMomentum, not both")
	}
	return nil
}

func nameKnown(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
