package analysis_test

import (
	"testing"

	"dpbyz/internal/analysis"
	"dpbyz/internal/analysis/atest"
)

// Each analyzer runs over a seeded-regression package (every diagnostic it
// must produce is annotated // want) and a clean-idiom package (it must stay
// silent). The scratchpos package includes the PR-2 RunWorker repro;
// registrypos includes typo'd registry names through the real lookups.

func TestDetlint(t *testing.T) {
	atest.Run(t, "testdata", []*analysis.Analyzer{analysis.Detlint}, "detpos", "detneg")
}

func TestHotPathAlloc(t *testing.T) {
	atest.Run(t, "testdata", []*analysis.Analyzer{analysis.HotPathAlloc}, "hotpathpos", "hotpathneg")
}

func TestScratchAlias(t *testing.T) {
	atest.Run(t, "testdata", []*analysis.Analyzer{analysis.ScratchAlias}, "scratchpos", "scratchneg")
}

func TestRegistryRef(t *testing.T) {
	atest.Run(t, "testdata", []*analysis.Analyzer{analysis.RegistryRef}, "registrypos", "registryneg")
}
