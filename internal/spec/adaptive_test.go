package spec

import (
	"context"
	"testing"
)

// The adaptive-attack regression gate: on a fixed small grid in the paper's
// central regime (DP noise on, f = 2 of n = 7 Byzantine), each stateful
// attacker must strictly degrade the final training loss relative to its
// stateless counterpart — IPM line-searches past the fixed Fall-of-Empires
// factor, and the drift attacker's low-pass-filtered target beats the sign
// flip's noisy instantaneous one. The grid cells (rule × seed) were chosen
// where the advantage is structural, not a seed accident; a regression in
// Observe/Craft (or in the state threading) shows up as a cell where the
// adaptive attack stopped winning.
func TestAdaptiveStrictlyDegradesStateless(t *testing.T) {
	if testing.Short() {
		t.Skip("training grid")
	}
	ctx := context.Background()
	mk := func(garName, attackName string, seed uint64) Spec {
		return Spec{
			Data:           DataSpec{N: 900, Features: 10},
			GAR:            GARSpec{Name: garName, N: 7, F: 2},
			Attack:         &AttackSpec{Name: attackName},
			Mechanism:      &MechanismSpec{Name: "gaussian", Epsilon: 0.5, Delta: 1e-6},
			Steps:          200,
			BatchSize:      20,
			LearningRate:   2,
			WorkerMomentum: 0.99,
			ClipNorm:       0.01,
			Seed:           seed,
		}
	}
	finalLoss := func(garName, attackName string, seed uint64) float64 {
		t.Helper()
		res, err := (&LocalBackend{}).Run(ctx, mk(garName, attackName, seed))
		if err != nil {
			t.Fatalf("%s/%s seed %d: %v", garName, attackName, seed, err)
		}
		return res.History.Record(res.History.Len() - 1).Loss
	}

	grid := []struct {
		stateless, adaptive string
		gars                []string
	}{
		// IPM's rule-aware line search dominates FoE everywhere; pin the two
		// rules with the widest structural margins.
		{stateless: "foe", adaptive: "ipm", gars: []string{"trimmedmean", "mda"}},
		// Drift's persistent direction slips through the coordinate-wise
		// filters that crush the sign flip.
		{stateless: "signflip", adaptive: "drift", gars: []string{"trimmedmean", "median"}},
	}
	for _, pair := range grid {
		for _, garName := range pair.gars {
			for seed := uint64(1); seed <= 3; seed++ {
				base := finalLoss(garName, pair.stateless, seed)
				adapt := finalLoss(garName, pair.adaptive, seed)
				if adapt <= base {
					t.Errorf("%s: adaptive %s final loss %.5f did not exceed stateless %s's %.5f (seed %d)",
						garName, pair.adaptive, adapt, pair.stateless, base, seed)
				}
			}
		}
	}
}
