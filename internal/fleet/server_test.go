package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dpbyz/internal/spec"
)

func newTestServer(t *testing.T, width int) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := Open(Config{Root: t.TempDir(), Width: width, CheckpointEvery: 10, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Stop()
	})
	return svc, ts
}

// postSpec submits one bare Spec over HTTP and returns the minted run ID.
func postSpec(t *testing.T, ts *httptest.Server, sp spec.Spec) spec.RunID {
	t.Helper()
	body, err := sp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /runs = %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Runs []struct {
			ID spec.RunID `json:"id"`
		} `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 1 {
		t.Fatalf("POST /runs minted %d ids, want 1", len(out.Runs))
	}
	return out.Runs[0].ID
}

// streamEvents reads the run's ndjson stream from cursor until the server
// ends it (run terminal), returning the decoded events.
func streamEvents(t *testing.T, ts *httptest.Server, id spec.RunID, cursor int) []Event {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/runs/%s/events?cursor=%d", ts.URL, id, cursor))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET events = %d: %s", resp.StatusCode, b)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestServerSubmitStatusStream(t *testing.T) {
	const steps = 60
	_, ts := newTestServer(t, 1)

	// Reference run for the final params the HTTP surface must report.
	ref, err := (&spec.LocalBackend{}).Run(context.Background(), fleetSpec(steps, 5))
	if err != nil {
		t.Fatal(err)
	}

	id := postSpec(t, ts, fleetSpec(steps, 5))

	// The live stream carries the full telemetry and ends when the run does.
	events := streamEvents(t, ts, id, 0)
	if len(events) != steps {
		t.Fatalf("stream delivered %d events, want %d", len(events), steps)
	}
	for i, ev := range events {
		if ev.Seq != i || ev.Step != i {
			t.Fatalf("event %d = seq %d step %d", i, ev.Seq, ev.Step)
		}
	}

	// GET /runs lists it; GET /runs/{id}?params=1 reports the final model.
	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Runs []Meta `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Runs) != 1 || list.Runs[0].ID != id {
		t.Fatalf("GET /runs = %+v", list.Runs)
	}

	resp, err = http.Get(fmt.Sprintf("%s/runs/%s?params=1", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Status != StatusDone {
		t.Fatalf("status %q (%s), want done", st.Status, st.Error)
	}
	if st.CompletedSteps != steps {
		t.Fatalf("completedSteps = %d, want %d", st.CompletedSteps, steps)
	}
	if st.SnapshotStep == nil || *st.SnapshotStep != steps {
		t.Fatal("final snapshot step missing or short")
	}
	if len(st.Params) != len(ref.Params) {
		t.Fatalf("param dims %d vs %d", len(st.Params), len(ref.Params))
	}
	for i := range st.Params {
		if st.Params[i] != ref.Params[i] {
			t.Fatalf("param %d = %v over HTTP, want %v", i, st.Params[i], ref.Params[i])
		}
	}
}

// A client that disconnects mid-stream and reconnects with its cursor (or
// the equivalent Last-Event-ID header) receives every event exactly once.
func TestServerCursorReconnectExactlyOnce(t *testing.T) {
	const steps = 2000
	_, ts := newTestServer(t, 1)
	id := postSpec(t, ts, fleetSpec(steps, 6))

	// First connection: read a strict prefix, then drop the connection.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/runs/"+string(id)+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	sc := bufio.NewScanner(resp.Body)
	for len(got) < steps/4 && sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	cancel() // simulated client failure: the server sees the socket die
	resp.Body.Close()
	if len(got) == 0 || len(got) >= steps {
		t.Fatalf("first connection read %d events; want a strict prefix", len(got))
	}

	// Reconnect with the Last-Event-ID of the last acked event.
	req2, err := http.NewRequest(http.MethodGet, ts.URL+"/runs/"+string(id)+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Last-Event-ID", fmt.Sprint(got[len(got)-1].Seq))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	sc2.Buffer(make([]byte, 1<<20), 1<<20)
	for sc2.Scan() {
		var ev Event
		if err := json.Unmarshal(sc2.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if err := sc2.Err(); err != nil {
		t.Fatal(err)
	}

	// Exactly once: both halves concatenate to seq 0..steps-1 with no gap
	// and no duplicate.
	if len(got) != steps {
		t.Fatalf("reconnected client saw %d events total, want %d", len(got), steps)
	}
	for i, ev := range got {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d (lost or duplicated at the seam)", i, ev.Seq)
		}
	}
}

// 32+ concurrent streams over one run each receive the complete event
// sequence, and /metrics accounts for them.
func TestServerManyConcurrentStreams(t *testing.T) {
	const (
		steps   = 500
		streams = 32
	)
	_, ts := newTestServer(t, 1)
	id := postSpec(t, ts, fleetSpec(steps, 7))

	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for c := 0; c < streams; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/runs/" + string(id) + "/events")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			n := 0
			for sc.Scan() {
				var ev Event
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					errs <- fmt.Errorf("stream %d: %v", c, err)
					return
				}
				if ev.Seq != n {
					errs <- fmt.Errorf("stream %d: event %d has seq %d", c, n, ev.Seq)
					return
				}
				n++
			}
			if err := sc.Err(); err != nil {
				errs <- fmt.Errorf("stream %d: %v", c, err)
				return
			}
			if n != steps {
				errs <- fmt.Errorf("stream %d delivered %d events, want %d", c, n, steps)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.StreamsTotal < streams {
		t.Fatalf("metrics counted %d streams, want >= %d", m.StreamsTotal, streams)
	}
	if m.Done < 1 {
		t.Fatalf("metrics runsDone = %d, want >= 1", m.Done)
	}
}

func TestServerCancelAndErrors(t *testing.T) {
	_, ts := newTestServer(t, 1)

	// Unknown run: 404 on status, events and cancel alike.
	for _, path := range []string{"/runs/run-00000042", "/runs/run-00000042/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	// Malformed submission: 400.
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad submission = %d, want 400", resp.StatusCode)
	}

	// A semantically invalid spec is rejected at the door with 400, and no
	// run is minted.
	bad := fleetSpec(10, 1)
	bad.GAR.F = 5 // trimmedmean needs n > 2f
	body, err := bad.JSON()
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec = %d, want 400", resp.StatusCode)
	}

	// Bad cursor: 400.
	id := postSpec(t, ts, fleetSpec(100000, 2))
	resp, err = http.Get(ts.URL + "/runs/" + string(id) + "/events?cursor=zebra")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cursor = %d, want 400", resp.StatusCode)
	}

	// DELETE a live run: 202, then the run lands cancelled and its stream
	// terminates rather than hanging.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+string(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d, want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/runs/" + string(id))
		if err != nil {
			t.Fatal(err)
		}
		var st RunStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Status == StatusCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in %q after DELETE", st.Status)
		}
		time.Sleep(time.Millisecond)
	}
	// The stream of a cancelled run ends (closed log), delivering whatever
	// prefix was recorded.
	events := streamEvents(t, ts, id, 0)
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	// A second DELETE on the terminal run conflicts.
	resp, err = http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE = %d, want 409", resp.StatusCode)
	}
}
