// Heterogeneity: how non-IID data sharpens the paper's DP × Byzantine
// tension. The program sweeps the Dirichlet label-skew concentration β —
// from extreme heterogeneity (β = 0.1: each worker sees almost one class)
// to near-IID (β = 10) — for two aggregation rules, MDA and trimmed mean,
// under the ALIE attack with Gaussian DP noise on. As β shrinks, the honest
// gradients disagree more, the effective variance-to-norm ratio grows, and
// the (α, f)-resilience margin the rules rely on erodes: the same defences
// that coexist on IID data visibly degrade.
//
// Every condition is one serializable dpbyz.Spec with a "partition" field —
// the same JSON-able object the CLI, cluster binaries and experiment grids
// consume — so any cell of this sweep can be exported with Spec.Save and
// replayed on a real cluster unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"dpbyz"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	steps := flag.Int("steps", 300, "SGD steps per condition")
	attack := flag.String("attack", "alie", "attack name (try the adaptive ipm or drift)")
	flag.Parse()

	fmt.Printf("Dirichlet label-skew sweep: %s attack, Gaussian DP eps=0.2, 5/11 Byzantine\n\n", *attack)
	fmt.Printf("%-14s %-8s %12s %12s\n", "gar", "beta", "min-loss", "final-acc")
	for _, garName := range []string{"mda", "trimmedmean"} {
		for _, beta := range []float64{0.1, 0.3, 1, 10} {
			s := dpbyz.Spec{
				Data:           dpbyz.DataSpec{N: 4000, Features: 20},
				Partition:      &dpbyz.PartitionSpec{Name: "dirichlet", Beta: beta},
				GAR:            dpbyz.GARSpec{Name: garName, N: 11, F: 5},
				Attack:         &dpbyz.AttackSpec{Name: *attack},
				Mechanism:      &dpbyz.MechanismSpec{Name: "gaussian", Epsilon: 0.2, Delta: 1e-6},
				Steps:          *steps,
				BatchSize:      50,
				LearningRate:   2,
				WorkerMomentum: 0.99,
				ClipNorm:       0.01,
				Seed:           1,
				AccuracyEvery:  50,
			}
			res, err := dpbyz.Run(context.Background(), s, dpbyz.WithParallel())
			if err != nil {
				return fmt.Errorf("%s beta=%v: %w", garName, beta, err)
			}
			minLoss, _ := res.History.MinLoss()
			fmt.Printf("%-14s %-8.3g %12.5f %12.4f\n",
				garName, beta, minLoss, res.History.FinalAccuracy())
		}
	}
	fmt.Println("\nSmaller beta = more label skew. Watch the final accuracy fall as the")
	fmt.Println("workers' data diverges: heterogeneity consumes the resilience margin")
	fmt.Println("that DP noise already thinned (the paper's Eq. 8 condition).")
	return nil
}
