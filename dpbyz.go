package dpbyz

import (
	"context"

	"dpbyz/internal/attack"
	"dpbyz/internal/data"
	"dpbyz/internal/dp"
	"dpbyz/internal/gar"
	"dpbyz/internal/metrics"
	"dpbyz/internal/model"
	"dpbyz/internal/randx"
	"dpbyz/internal/simulate"
)

// Core type aliases. Aliasing (rather than wrapping) keeps the public API
// zero-cost and lets the internal packages evolve behind one import path.
type (
	// Dataset is an in-memory labelled dataset.
	Dataset = data.Dataset
	// Point is one labelled example.
	Point = data.Point
	// SyntheticPhishingConfig parameterizes the phishing-like generator.
	SyntheticPhishingConfig = data.SyntheticPhishingConfig
	// TwoGaussiansConfig parameterizes the two-cluster generator.
	TwoGaussiansConfig = data.TwoGaussiansConfig
	// GaussianMeanConfig parameterizes Theorem 1's data distribution.
	GaussianMeanConfig = data.GaussianMeanConfig

	// Model is a differentiable learning task.
	Model = model.Model
	// Predictor is a model that can score points for accuracy.
	Predictor = model.Predictor

	// GAR is a gradient aggregation rule.
	GAR = gar.GAR
	// Table1Row is one row of the reproduced Table 1.
	Table1Row = gar.Table1Row

	// Attack crafts Byzantine gradients.
	Attack = attack.Attack

	// Budget is an (ε, δ) differential-privacy budget.
	Budget = dp.Budget
	// Mechanism is a noise-injection DP mechanism.
	Mechanism = dp.Mechanism
	// Accountant tracks cumulative privacy spend.
	Accountant = dp.Accountant

	// TrainConfig configures a training run (see Train).
	TrainConfig = simulate.Config
	// TrainResult is a finished run: final parameters plus metric history.
	TrainResult = simulate.Result
	// History is a per-step metric trace.
	History = metrics.History
	// StepRecord is one step's metrics.
	StepRecord = metrics.StepRecord
	// SeriesStats is a mean ± std aggregation across seeds.
	SeriesStats = metrics.SeriesStats

	// Stream is a deterministic random stream.
	Stream = randx.Stream
)

// Dataset constructors.
var (
	// NewDataset builds a dataset from points.
	NewDataset = data.New
	// SyntheticPhishing generates the offline stand-in for the paper's
	// phishing dataset.
	SyntheticPhishing = data.SyntheticPhishing
	// TwoGaussians generates a two-cluster classification task.
	TwoGaussians = data.TwoGaussians
	// GaussianMean generates Theorem 1's N(x̄, σ²/d·I) data.
	GaussianMean = data.GaussianMean
	// ParseLIBSVM loads a LIBSVM-format file (e.g. the real phishing data).
	ParseLIBSVM = data.ParseLIBSVM
)

// Model constructors.
var (
	// NewLogisticMSE is the paper's logistic-regression-with-MSE model.
	NewLogisticMSE = model.NewLogisticMSE
	// NewLogisticNLL is cross-entropy logistic regression.
	NewLogisticNLL = model.NewLogisticNLL
	// NewLinearRegression is ordinary least squares.
	NewLinearRegression = model.NewLinearRegression
	// NewMeanEstimation is Theorem 1's strongly convex objective.
	NewMeanEstimation = model.NewMeanEstimation
	// NewMLP is a one-hidden-layer perceptron.
	NewMLP = model.NewMLP
	// Accuracy evaluates thresholded classification accuracy.
	Accuracy = model.Accuracy
	// DatasetLoss evaluates the average loss over a dataset.
	DatasetLoss = model.DatasetLoss
)

// DP constructors.
var (
	// NewGaussianMechanism calibrates Gaussian noise for a clipped batch
	// gradient: NewGaussianMechanism(gmax, batchSize, budget).
	NewGaussianMechanism = dp.NewGaussian
	// NewLaplaceMechanismForGradient calibrates Laplace noise for a clipped
	// gradient: (gmax, batchSize, dim, epsilon).
	NewLaplaceMechanismForGradient = dp.NewLaplaceForGradient
	// NewAccountant tracks per-step budget spend.
	NewAccountant = dp.NewAccountant
	// BasicComposition and AdvancedComposition bound the total budget of a
	// multi-step release.
	BasicComposition    = dp.BasicComposition
	AdvancedComposition = dp.AdvancedComposition
	// NoiseSigmaForGradient returns the paper's per-step noise scale
	// s = 2·Gmax·√(2·log(1.25/δ))/(b·ε).
	NoiseSigmaForGradient = dp.NoiseSigmaForGradient
)

// GAR and attack registries.
var (
	// NewGAR builds a rule by name for (n, f); see GARNames.
	NewGAR = gar.New
	// GARNames lists the registered aggregation rules.
	GARNames = gar.Names
	// ResilientGARNames lists the Byzantine-resilient rules.
	ResilientGARNames = gar.ResilientNames
	// NewAttack builds an attack by name; see AttackNames.
	NewAttack = attack.New
	// AttackNames lists the registered attacks.
	AttackNames = attack.Names
)

// VN-ratio analysis (Table 1 / Propositions 1–3).
var (
	// EmpiricalVNRatio estimates Eq. 2's ratio from honest gradients.
	EmpiricalVNRatio = gar.EmpiricalVNRatio
	// DPAdjustedVNRatio estimates Eq. 8's DP-inflated ratio.
	DPAdjustedVNRatio = gar.DPAdjustedVNRatio
	// Table1 evaluates the paper's Table 1 for a configuration.
	Table1 = gar.Table1
	// MaxByzFracMDA is Proposition 1's threshold.
	MaxByzFracMDA = gar.MaxByzFracMDA
	// MinBatchKrum is Proposition 2's threshold for the Krum family.
	MinBatchKrum = gar.MinBatchKrum
)

// NewStream returns a deterministic random stream for the given seed.
func NewStream(seed uint64) *Stream { return randx.New(seed) }

// Train runs distributed SGD in the parameter-server model per the supplied
// configuration and returns the final parameters and metric history.
//
// Deprecated: Train predates the serializable Spec API and requires live
// objects (Model, GAR, Attack, Mechanism) that cannot move between
// execution backends. Build a Spec (registry names + parameters) and run it
// with Run, LocalBackend or ClusterBackend instead; this shim remains for
// one release to ease migration and simply forwards to the simulator the
// LocalBackend wraps.
func Train(ctx context.Context, cfg TrainConfig) (*TrainResult, error) {
	return simulate.Run(ctx, cfg)
}
