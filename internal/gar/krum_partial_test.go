package gar

import (
	"sort"
	"testing"

	"dpbyz/internal/randx"
	"dpbyz/internal/vecmath"
)

// referenceKrumScores is the pre-optimization krumScoresInto: full sort of
// every gathered neighbour row, ascending sum of the k-prefix. It exists
// only as the bit-identity oracle for the partial-selection kernel.
func referenceKrumScores(grads [][]float64, f int) []float64 {
	n := len(grads)
	gram, err := vecmath.PairwiseSqDists(grads)
	if err != nil {
		panic(err)
	}
	k := n - f - 2
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, gram[i][j])
			}
		}
		sort.Float64s(row)
		var sum float64
		for _, d := range row[:k] {
			sum += d
		}
		scores[i] = sum
	}
	return scores
}

// TestKrumScoresPartialSelectionBitIdentical pins the partial-selection
// kernel to the sorted-row reference, bit for bit, on the battery fixtures —
// Gaussian clouds, clouds with planted outliers, and clouds dense with
// exact ties (colluding Byzantine submissions are identical vectors, so tied
// distances are the norm, not the edge case).
func TestKrumScoresPartialSelectionBitIdentical(t *testing.T) {
	type fixture struct {
		name  string
		grads [][]float64
		f     int
	}
	var fixtures []fixture
	for seed := uint64(1); seed <= 5; seed++ {
		cloud, _ := gaussianCloud(randx.New(seed), propertyN, propertyD, 1)
		fixtures = append(fixtures,
			fixture{"gaussian", cloud, propertyF},
			fixture{"outliers", cloudWithOutliers(13, 2, 31, 1, 0.3, 25, seed), 2},
		)
	}
	// Colluders: 5 of 11 workers submit the identical vector.
	tied, _ := gaussianCloud(randx.New(99), 11, 16, 1)
	for i := 1; i < 5; i++ {
		copy(tied[i], tied[0])
	}
	fixtures = append(fixtures, fixture{"colluders", tied, 2})

	for _, fx := range fixtures {
		want := referenceKrumScores(fx.grads, fx.f)
		s := getScratch()
		got := krumScoresInto(s, fx.grads, fx.f)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: score[%d] = %v, reference %v", fx.name, i, got[i], want[i])
			}
		}
		putScratch(s)
	}
}
