package randx

import (
	"math"
	"testing"
)

// The ziggurat tables must tile the density exactly: equal-area strips whose
// cumulative heights reach f(0) = 1 and whose x-edges decrease to 0.
func TestZigguratTableConsistency(t *testing.T) {
	if zigX[1] != zigR {
		t.Fatalf("zigX[1] = %v, want R", zigX[1])
	}
	for i := 1; i < zigStrips; i++ {
		if zigX[i+1] >= zigX[i] {
			t.Fatalf("zigX not strictly decreasing at %d: %v >= %v", i, zigX[i+1], zigX[i])
		}
		if zigY[i+1] <= zigY[i] {
			t.Fatalf("zigY not strictly increasing at %d", i)
		}
		// zigY[i] must be f(zigX[i]).
		if f := math.Exp(-0.5 * zigX[i] * zigX[i]); math.Abs(f-zigY[i]) > 1e-12 {
			t.Fatalf("zigY[%d] = %v, want f(x) = %v", i, zigY[i], f)
		}
	}
	// The recurrence must close the ziggurat at the mode: the last strip's
	// top edge lands on f(0) = 1 up to the table constants' precision.
	closure := zigY[zigStrips-1] + zigV/zigX[zigStrips-1]
	if math.Abs(closure-1) > 1e-7 {
		t.Fatalf("ziggurat does not close: top edge %v", closure)
	}
	// Base strip: rectangle area matches the shared strip area V.
	if a := zigX[0] * zigY[1]; math.Abs(a-zigV) > 1e-15 {
		t.Fatalf("base strip area %v != V", a)
	}
}

// Ziggurat moments: mean 0, variance 1, plus tail mass in the right ballpark
// (the tail path must actually fire).
func TestZigguratMomentsAndTail(t *testing.T) {
	r := New(123)
	const n = 500000
	var sum, sumSq, sumCube float64
	tail := 0
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
		sumCube += x * x * x
		if math.Abs(x) > zigR {
			tail++
		}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v", variance)
	}
	if math.Abs(sumCube/n) > 0.03 {
		t.Errorf("third moment = %v, want ~0", sumCube/n)
	}
	// P(|X| > 3.654) ≈ 2.58e-4: with 5e5 draws expect ≈ 129.
	if tail < 60 || tail > 260 {
		t.Errorf("tail draws = %d, want ≈ 129", tail)
	}
}

// Per-interval frequencies against the normal CDF — a coarse goodness-of-fit
// check that would catch mis-stacked strips.
func TestZigguratDistribution(t *testing.T) {
	r := New(77)
	const n = 200000
	edges := []float64{-2, -1, -0.5, 0, 0.5, 1, 2}
	counts := make([]int, len(edges)+1)
	for i := 0; i < n; i++ {
		x := r.Normal()
		b := 0
		for b < len(edges) && x > edges[b] {
			b++
		}
		counts[b]++
	}
	cdf := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	prev := 0.0
	for b := range counts {
		var p float64
		if b == len(edges) {
			p = 1 - prev
		} else {
			c := cdf(edges[b])
			p = c - prev
			prev = c
		}
		want := p * n
		if math.Abs(float64(counts[b])-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d, want ≈ %.0f", b, counts[b], want)
		}
	}
}

// NormalBoxMuller must keep consuming the uniform stream exactly as the
// historical Normal did: radius·cos from two uniforms, cached sine spare.
func TestNormalBoxMullerBitCompatible(t *testing.T) {
	a, b := New(99), New(99)
	// Reference implementation, transcribed from the pre-ziggurat sampler.
	ref := func(r *Stream, spare *float64, has *bool) float64 {
		if *has {
			*has = false
			return *spare
		}
		var u float64
		for u == 0 {
			u = r.Float64()
		}
		v := r.Float64()
		radius := math.Sqrt(-2 * math.Log(u))
		theta := 2 * math.Pi * v
		*spare = radius * math.Sin(theta)
		*has = true
		return radius * math.Cos(theta)
	}
	var spare float64
	var has bool
	for i := 0; i < 2000; i++ {
		if got, want := a.NormalBoxMuller(), ref(b, &spare, &has); got != want {
			t.Fatalf("draw %d: %v != %v", i, got, want)
		}
	}
}

func TestNormalBoxMullerMoments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormalBoxMuller()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	if variance := sumSq/n - mean*mean; math.Abs(variance-1) > 0.03 || math.Abs(mean) > 0.02 {
		t.Errorf("Box-Muller moments: mean %v, var %v", mean, variance)
	}
}
