package fleet

import (
	"context"
	"testing"
	"time"

	"dpbyz/internal/checkpoint"
	"dpbyz/internal/spec"
)

// fleetSpec is a DP + attack + worker-momentum run — every piece of
// per-step mutable state is live, so the kill-and-resume test below can
// only pass if the whole snapshot/event-log machinery is exact.
func fleetSpec(steps int, seed uint64) spec.Spec {
	return spec.Spec{
		Data:           spec.DataSpec{N: 600, Features: 10},
		GAR:            spec.GARSpec{Name: "trimmedmean", N: 7, F: 2},
		Attack:         &spec.AttackSpec{Name: "alie"},
		Mechanism:      &spec.MechanismSpec{Name: "gaussian", Epsilon: 0.5, Delta: 1e-6},
		Steps:          steps,
		BatchSize:      20,
		LearningRate:   2,
		WorkerMomentum: 0.99,
		ClipNorm:       0.01,
		Seed:           seed,
	}
}

// waitFinished blocks until the run is terminal or the deadline passes.
func waitFinished(t *testing.T, svc *Service, id spec.RunID, timeout time.Duration) {
	t.Helper()
	done, err := svc.Finished(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("run %s did not finish within %v", id, timeout)
	}
}

// assertEventsExactlyOnce checks the run's log holds events 0..steps-1,
// each exactly once, in order — the no-loss/no-duplication invariant.
func assertEventsExactlyOnce(t *testing.T, log *EventLog, steps int) {
	t.Helper()
	if log.Len() != steps {
		t.Fatalf("event log has %d lines, want %d", log.Len(), steps)
	}
	for i := 0; i < steps; i++ {
		ev, err := log.Event(i)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq != i || ev.Step != i {
			t.Fatalf("event %d = seq %d step %d (duplicate or gap)", i, ev.Seq, ev.Step)
		}
	}
}

// The acceptance test: a fleet service killed with >= 2 runs in flight and
// restarted produces final params bit-identical to an uninterrupted
// service, and the regenerated event logs hold every event exactly once.
func TestFleetKillResumeBitIdentity(t *testing.T) {
	const (
		steps = 1000
		every = 25
		nRuns = 2
	)
	root := t.TempDir()

	// Reference trajectories: direct uninterrupted backend runs.
	want := make([][]float64, nRuns)
	for i := 0; i < nRuns; i++ {
		res, err := (&spec.LocalBackend{}).Run(context.Background(), fleetSpec(steps, uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Params
	}

	// Service A: both runs in flight concurrently.
	svcA, err := Open(Config{Root: root, Width: nRuns, CheckpointEvery: every, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	sub := &spec.Submission{Runs: []spec.Spec{fleetSpec(steps, 1), fleetSpec(steps, 2)}, CheckpointEvery: every}
	ids, err := svcA.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != nRuns {
		t.Fatalf("submitted %d runs, want %d", len(ids), nRuns)
	}

	// Wait until both runs are demonstrably mid-flight (some telemetry, not
	// done), then kill the service — buffered events die with it and the
	// store keeps only what the durability contract promised.
	deadline := time.Now().Add(30 * time.Second)
	for {
		progressed := 0
		for _, id := range ids {
			log, err := svcA.Events(id)
			if err != nil {
				t.Fatal(err)
			}
			if n := log.Len(); n >= every && n < steps {
				progressed++
			}
			if log.Len() >= steps {
				t.Fatalf("run %s finished before the kill; raise steps", id)
			}
		}
		if progressed == nRuns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("runs never reached mid-flight")
		}
		time.Sleep(200 * time.Microsecond)
	}
	svcA.Kill()

	// The killed store is genuinely stale: meta still says running, the log
	// may exceed the snapshot (flushed-but-unsnapshotted progress) and the
	// snapshot is behind the trajectory the dead service had computed.
	for _, id := range ids {
		meta, err := NewStore(root).LoadMeta(id)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Status != StatusRunning {
			t.Fatalf("killed run %s has status %q on disk, want running", id, meta.Status)
		}
	}

	// Service B on the same store: every run resumes and completes.
	svcB, err := Open(Config{Root: root, Width: nRuns, CheckpointEvery: every, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svcB.Stop()
	for _, id := range ids {
		waitFinished(t, svcB, id, 60*time.Second)
	}

	for i, id := range ids {
		meta, err := svcB.Meta(id)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Status != StatusDone {
			t.Fatalf("resumed run %s ended %q (%s), want done", id, meta.Status, meta.Error)
		}
		snap, err := svcB.Snapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap == nil || snap.Step != steps {
			t.Fatalf("run %s final snapshot missing or at wrong step", id)
		}
		if len(snap.Params) != len(want[i]) {
			t.Fatalf("run %s param dims %d vs %d", id, len(snap.Params), len(want[i]))
		}
		for j := range snap.Params {
			if snap.Params[j] != want[i][j] {
				t.Fatalf("run %s param %d differs after kill+resume: %v vs %v",
					id, j, snap.Params[j], want[i][j])
			}
		}
		log, err := svcB.Events(id)
		if err != nil {
			t.Fatal(err)
		}
		assertEventsExactlyOnce(t, log, steps)
	}
}

// A graceful stop leaves the store resumable too: interrupted runs flush a
// final snapshot, stay non-terminal on disk, and a reopened service
// finishes them with the same exactly-once event history.
func TestFleetStopResume(t *testing.T) {
	const (
		steps = 1000
		every = 25
	)
	root := t.TempDir()
	svcA, err := Open(Config{Root: root, Width: 1, CheckpointEvery: every, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := svcA.Submit(&spec.Submission{Runs: []spec.Spec{fleetSpec(steps, 7)}})
	if err != nil {
		t.Fatal(err)
	}
	id := ids[0]
	deadline := time.Now().Add(30 * time.Second)
	for {
		log, err := svcA.Events(id)
		if err != nil {
			t.Fatal(err)
		}
		if n := log.Len(); n >= every && n < steps {
			break
		}
		if log.Len() >= steps {
			t.Fatal("run finished before the stop; raise steps")
		}
		if time.Now().After(deadline) {
			t.Fatal("run never reached mid-flight")
		}
		time.Sleep(200 * time.Microsecond)
	}
	svcA.Stop()

	// The graceful path flushed a snapshot on interrupt: snapshot and log
	// both exist, with log length >= snapshot step (the durability bound).
	st, err := checkpoint.LoadRunState(NewStore(root).Dir(id).SnapshotPath())
	if err != nil {
		t.Fatal(err)
	}
	if st.Step <= 0 || st.Step >= steps {
		t.Fatalf("interrupt snapshot at step %d", st.Step)
	}

	svcB, err := Open(Config{Root: root, Width: 1, CheckpointEvery: every, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svcB.Stop()
	waitFinished(t, svcB, id, 60*time.Second)
	meta, err := svcB.Meta(id)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Status != StatusDone {
		t.Fatalf("run ended %q (%s), want done", meta.Status, meta.Error)
	}
	log, err := svcB.Events(id)
	if err != nil {
		t.Fatal(err)
	}
	assertEventsExactlyOnce(t, log, steps)
}

// DELETE semantics: a queued run never starts; a running run aborts with
// no side effects beyond its flushed prefix; both end cancelled.
func TestFleetCancel(t *testing.T) {
	root := t.TempDir()
	svc, err := Open(Config{Root: root, Width: 1, CheckpointEvery: 10, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()

	// Width 1: the first run occupies the worker; the second stays queued.
	ids, err := svc.Submit(&spec.Submission{Runs: []spec.Spec{
		fleetSpec(4000, 1), fleetSpec(50, 2),
	}})
	if err != nil {
		t.Fatal(err)
	}
	running, queued := ids[0], ids[1]

	// Cancel the queued run before it ever starts.
	if err := svc.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, svc, queued, 10*time.Second)
	meta, err := svc.Meta(queued)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Status != StatusCancelled {
		t.Fatalf("queued run ended %q, want cancelled", meta.Status)
	}
	log, err := svc.Events(queued)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != 0 {
		t.Fatalf("cancelled-before-start run logged %d events", log.Len())
	}

	// Cancel the running run mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		log, err := svc.Events(running)
		if err != nil {
			t.Fatal(err)
		}
		if log.Len() >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never progressed")
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := svc.Cancel(running); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, svc, running, 30*time.Second)
	meta, err = svc.Meta(running)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Status != StatusCancelled {
		t.Fatalf("running run ended %q (%s), want cancelled", meta.Status, meta.Error)
	}
	// Cancelling a terminal run is a conflict, not a repeat.
	if err := svc.Cancel(running); err != ErrNotRunning {
		t.Fatalf("second cancel returned %v, want ErrNotRunning", err)
	}
}

// A cluster-backend submission runs to done through the same control plane.
func TestFleetClusterBackend(t *testing.T) {
	root := t.TempDir()
	svc, err := Open(Config{Root: root, Width: 1, CheckpointEvery: 10, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	sp := spec.Spec{
		Data:         spec.DataSpec{N: 400, Features: 8},
		GAR:          spec.GARSpec{Name: "trimmedmean", N: 5, F: 1},
		Attack:       &spec.AttackSpec{Name: "signflip"},
		Steps:        30,
		BatchSize:    10,
		LearningRate: 1,
		Seed:         3,
	}
	ids, err := svc.Submit(&spec.Submission{Backend: "cluster", Runs: []spec.Spec{sp}})
	if err != nil {
		t.Fatal(err)
	}
	waitFinished(t, svc, ids[0], 60*time.Second)
	meta, err := svc.Meta(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if meta.Status != StatusDone {
		t.Fatalf("cluster run ended %q (%s), want done", meta.Status, meta.Error)
	}
	if meta.Cluster == nil {
		t.Fatal("cluster run carries no ClusterStats")
	}
	if got := meta.Cluster.Accepted + meta.Cluster.Missed; got != 5*30 {
		t.Fatalf("accounting: accepted+missed = %d, want %d", got, 5*30)
	}
	log, err := svc.Events(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	assertEventsExactlyOnce(t, log, 30)
}

// Priority orders queued runs: with one worker busy, a later high-priority
// submission overtakes earlier low-priority ones.
func TestFleetPriorityScheduling(t *testing.T) {
	root := t.TempDir()
	svc, err := Open(Config{Root: root, Width: 1, CheckpointEvery: 50, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()

	// Occupy the single worker long enough that the later submissions are
	// genuinely queued behind it (it is cancelled at the end, not awaited).
	blocker, err := svc.Submit(&spec.Submission{Runs: []spec.Spec{fleetSpec(500000, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	// The low-priority run is long so it cannot slip to done in the gap
	// between the high-priority run finishing and the assertion below.
	low, err := svc.Submit(&spec.Submission{Priority: 1, Runs: []spec.Spec{fleetSpec(500000, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	high, err := svc.Submit(&spec.Submission{Priority: 9, Runs: []spec.Spec{fleetSpec(40, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	// Both are queued while the blocker runs; release the worker and let the
	// scheduler pick. Priority must beat submission order.
	lowMeta, err := svc.Meta(low[0])
	if err != nil {
		t.Fatal(err)
	}
	highMeta, err := svc.Meta(high[0])
	if err != nil {
		t.Fatal(err)
	}
	if lowMeta.Status != StatusPending || highMeta.Status != StatusPending {
		t.Fatalf("queued runs not pending (low %q, high %q); blocker too short",
			lowMeta.Status, highMeta.Status)
	}
	if err := svc.Cancel(blocker[0]); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, svc, high[0], 60*time.Second)
	// When the high-priority run finishes, the low one must not have
	// finished first (it started strictly later on the single worker).
	lowMeta, err = svc.Meta(low[0])
	if err != nil {
		t.Fatal(err)
	}
	if lowMeta.Status == StatusDone {
		t.Fatal("low-priority run finished before the high-priority one on a width-1 pool")
	}
	if err := svc.Cancel(low[0]); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, svc, low[0], 60*time.Second)
	waitFinished(t, svc, blocker[0], 60*time.Second)
}
