// Federated network example: a real TCP parameter server plus five worker
// goroutines (one Byzantine, all DP-noised) training over localhost — the
// paper's Fig. 1(b) deployment end to end, with gradients travelling over
// actual sockets.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"dpbyz"
	"dpbyz/internal/attack"
	"dpbyz/internal/cluster"
	"dpbyz/internal/data"
	"dpbyz/internal/dp"
	"dpbyz/internal/gar"
	"dpbyz/internal/model"
)

const (
	workers   = 5
	byzantine = 1
	steps     = 100
	batch     = 25
	gmax      = 0.01
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	m, err := model.NewLogisticMSE(16)
	if err != nil {
		return err
	}
	g, err := gar.NewMDA(workers, byzantine)
	if err != nil {
		return err
	}
	srv, err := cluster.NewServer(cluster.ServerConfig{
		Addr:         "127.0.0.1:0",
		GAR:          g,
		Dim:          m.Dim(),
		Steps:        steps,
		LearningRate: 2,
		Momentum:     0.9,
		RoundTimeout: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	fmt.Println("parameter server listening on", srv.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Each worker holds its own local shard (non-IID by seed).
			shard, err := data.SyntheticPhishing(data.SyntheticPhishingConfig{
				N: 1500, Features: 16, Seed: uint64(100 + id),
			})
			if err != nil {
				log.Printf("worker %d: %v", id, err)
				return
			}
			mech, err := dp.NewGaussian(gmax, batch, dp.Budget{Epsilon: 0.5, Delta: 1e-6})
			if err != nil {
				log.Printf("worker %d: %v", id, err)
				return
			}
			cfg := cluster.WorkerConfig{
				Addr:      srv.Addr(),
				WorkerID:  id,
				Model:     m,
				Train:     shard,
				BatchSize: batch,
				ClipNorm:  gmax,
				Mechanism: mech,
				Seed:      uint64(id + 1),
			}
			if id == 0 {
				cfg.Attack = attack.NewSignFlip()
				fmt.Println("worker 0 is Byzantine (sign flip)")
			}
			res, err := cluster.RunWorker(ctx, cfg)
			if err != nil {
				log.Printf("worker %d: %v", id, err)
				return
			}
			fmt.Printf("worker %d completed %d rounds\n", id, res.Rounds)
		}(i)
	}

	res, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		return err
	}

	// Evaluate the final model on fresh data.
	eval, err := dpbyz.SyntheticPhishing(dpbyz.SyntheticPhishingConfig{
		N: 2000, Features: 16, Seed: 999,
	})
	if err != nil {
		return err
	}
	acc := dpbyz.Accuracy(m, res.Params, eval)
	fmt.Printf("training finished: %d rounds, %d missed gradients, eval accuracy %.4f\n",
		res.History.Len(), res.MissedGradients, acc)
	return nil
}
