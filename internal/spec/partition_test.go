package spec

import (
	"context"
	"testing"
	"time"

	"dpbyz/internal/data"
	"dpbyz/internal/partition"
)

// heteroSpec is the acceptance scenario of the scenario-engine issue: a
// Dirichlet label-skew partition plus a stateful GAR-aware attacker under
// Gaussian DP noise.
func heteroSpec() Spec {
	return Spec{
		Name:           "hetero",
		Data:           DataSpec{N: 900, Features: 10},
		Partition:      &PartitionSpec{Name: "dirichlet", Beta: 0.3},
		GAR:            GARSpec{Name: "trimmedmean", N: 7, F: 2},
		Attack:         &AttackSpec{Name: "ipm"},
		Mechanism:      &MechanismSpec{Name: "gaussian", Epsilon: 0.5, Delta: 1e-6},
		Steps:          40,
		BatchSize:      20,
		LearningRate:   2,
		WorkerMomentum: 0.99,
		ClipNorm:       0.01,
		Seed:           1,
	}
}

// sameDataset compares two datasets point for point (bitwise).
func sameDataset(a, b *data.Dataset) bool {
	if a.Len() != b.Len() || a.Dim() != b.Dim() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		pa, pb := a.Point(i), b.Point(i)
		if pa.Y != pb.Y {
			return false
		}
		for j := range pa.X {
			if pa.X[j] != pb.X[j] {
				return false
			}
		}
	}
	return true
}

// Every process materializing the same partitioned Spec must compute
// identical per-worker datasets — the property that lets LocalBackend, the
// in-process cluster, and JoinSpec workers on other machines agree on the
// scenario without shipping data.
func TestPartitionCrossBackendDatasets(t *testing.T) {
	for _, name := range partition.DisjointNames() {
		t.Run(name, func(t *testing.T) {
			s := heteroSpec()
			s.Partition = &PartitionSpec{Name: name, Beta: 0.3, Shards: 1, Alpha: 1.5}
			// Two independent materializations model two processes (the
			// local backend and a JoinSpec worker).
			local, err := s.materialize(&runOptions{})
			if err != nil {
				t.Fatal(err)
			}
			remote, err := s.materialize(&runOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if local.workerTrain == nil || len(local.workerTrain) != s.GAR.N {
				t.Fatalf("expected %d worker shards, got %v", s.GAR.N, len(local.workerTrain))
			}
			total := 0
			for id := 0; id < s.GAR.N; id++ {
				if !sameDataset(local.trainFor(id), remote.trainFor(id)) {
					t.Errorf("worker %d datasets differ across materializations", id)
				}
				total += local.trainFor(id).Len()
			}
			if total != local.train.Len() {
				t.Errorf("shards hold %d points, train split has %d", total, local.train.Len())
			}
		})
	}
	// The explicit "iid" partition is the shared-dataset default.
	s := heteroSpec()
	s.Partition = &PartitionSpec{Name: "iid"}
	m, err := s.materialize(&runOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.workerTrain != nil {
		t.Error("iid partition materialized per-worker copies")
	}
	if m.trainFor(3) != m.train {
		t.Error("iid worker dataset is not the shared train split")
	}
}

// An explicit "iid" partition must run bit-identically to no partition at
// all — the registry's default really is the historical behaviour.
func TestIIDPartitionMatchesUnpartitioned(t *testing.T) {
	ctx := context.Background()
	s := heteroSpec()
	s.Partition = nil
	plain, err := (&LocalBackend{}).Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	s.Partition = &PartitionSpec{Name: "iid"}
	iid, err := (&LocalBackend{}).Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Params {
		if plain.Params[i] != iid.Params[i] {
			t.Fatalf("param %d: iid %v != unpartitioned %v", i, iid.Params[i], plain.Params[i])
		}
	}
}

// The acceptance scenario: a Dirichlet + adaptive-attack Spec must be
// bit-reproducible per seed on BOTH backends — two runs of the same Spec
// agree exactly, and a different seed actually changes the trajectory.
func TestHeteroAdaptiveBitReproducible(t *testing.T) {
	ctx := context.Background()
	s := heteroSpec()

	runTwice := func(be Backend, opts ...Option) (*Result, *Result) {
		t.Helper()
		a, err := be.Run(ctx, s, opts...)
		if err != nil {
			t.Fatalf("%s: %v", be.Name(), err)
		}
		b, err := be.Run(ctx, s, opts...)
		if err != nil {
			t.Fatalf("%s: %v", be.Name(), err)
		}
		return a, b
	}
	assertSame := func(label string, a, b *Result) {
		t.Helper()
		if len(a.Params) != len(b.Params) {
			t.Fatalf("%s: param dims differ", label)
		}
		for i := range a.Params {
			if a.Params[i] != b.Params[i] {
				t.Fatalf("%s: param %d differs between identical runs: %v vs %v",
					label, i, a.Params[i], b.Params[i])
			}
		}
	}

	l1, l2 := runTwice(&LocalBackend{})
	assertSame("local", l1, l2)
	if !allFinite(l1.Params) {
		t.Fatal("local params not finite")
	}

	c1, c2 := runTwice(&ClusterBackend{}, WithRoundTimeout(time.Minute))
	assertSame("cluster", c1, c2)
	if !allFinite(c1.Params) {
		t.Fatal("cluster params not finite")
	}
	if got, want := c1.Cluster.Accepted+c1.Cluster.Missed, s.GAR.N*s.Steps; got != want {
		t.Errorf("cluster accounting %d, want %d", got, want)
	}

	// The seed is live: a different seed must not reproduce the same model.
	s2 := s
	s2.Seed = 2
	other, err := (&LocalBackend{}).Run(ctx, s2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range l1.Params {
		if other.Params[i] != l1.Params[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical trajectories")
	}
}

// Partition validation: unknown names and negative parameters are rejected
// before any run starts.
func TestPartitionSpecValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Spec){
		"unknown partitioner": func(s *Spec) { s.Partition = &PartitionSpec{Name: "sorted"} }, //dpbyz:unregistered
		"negative beta":       func(s *Spec) { s.Partition = &PartitionSpec{Name: "dirichlet", Beta: -1} },
		"negative shards":     func(s *Spec) { s.Partition = &PartitionSpec{Name: "shard", Shards: -2} },
		"negative alpha":      func(s *Spec) { s.Partition = &PartitionSpec{Name: "quantity", Alpha: -0.5} },
	} {
		s := heteroSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A partition that cannot feed every worker fails at materialize time.
	s := heteroSpec()
	s.Data.N = 20
	s.Data.TrainN = 8
	s.Partition = &PartitionSpec{Name: "shard", Shards: 3}
	if _, err := s.materialize(&runOptions{}); err == nil {
		t.Error("materialize accepted a partition with too few points per worker")
	}
}
