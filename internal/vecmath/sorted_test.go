package vecmath

import (
	"testing"
	"testing/quick"
)

func TestTrimmedCoordMean(t *testing.T) {
	tests := []struct {
		name string
		give [][]float64
		trim int
		want []float64
	}{
		{
			name: "zero trim equals mean",
			give: [][]float64{{1}, {2}, {3}},
			trim: 0,
			want: []float64{2},
		},
		{
			name: "trims extremes",
			give: [][]float64{{-100}, {1}, {2}, {3}, {100}},
			trim: 1,
			want: []float64{2},
		},
		{
			name: "per coordinate independently",
			give: [][]float64{{-100, 5}, {1, -100}, {2, 6}, {3, 7}, {100, 100}},
			trim: 1,
			want: []float64{2, 6},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := TrimmedCoordMean(tt.give, tt.trim)
			if err != nil {
				t.Fatal(err)
			}
			if !ApproxEqual(got, tt.want, 1e-12) {
				t.Errorf("TrimmedCoordMean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTrimmedCoordMeanErrors(t *testing.T) {
	if _, err := TrimmedCoordMean(nil, 0); err == nil {
		t.Error("empty input did not error")
	}
	if _, err := TrimmedCoordMean([][]float64{{1}, {2}}, 1); err == nil {
		t.Error("over-trimming did not error")
	}
	if _, err := TrimmedCoordMean([][]float64{{1}}, -1); err == nil {
		t.Error("negative trim did not error")
	}
	if _, err := TrimmedCoordMean([][]float64{{1}, {1, 2}, {3}}, 0); err == nil {
		t.Error("ragged input did not error")
	}
}

func TestMeanAroundMedian(t *testing.T) {
	// Median of {1,2,3,4,1000} is 3; the 3 closest values are {2,3,4}.
	got, err := MeanAroundMedian([][]float64{{1}, {2}, {3}, {4}, {1000}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(got, []float64{3}, 1e-12) {
		t.Errorf("MeanAroundMedian = %v, want [3]", got)
	}
}

func TestMeanAroundMedianFullWindowIsMean(t *testing.T) {
	vs := [][]float64{{1, -4}, {5, 0}, {9, 2}}
	got, err := MeanAroundMedian(vs, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := Mean(vs)
	if !ApproxEqual(got, mean, 1e-12) {
		t.Errorf("MeanAroundMedian with m=n = %v, want mean %v", got, mean)
	}
}

func TestMeanAroundMedianErrors(t *testing.T) {
	if _, err := MeanAroundMedian(nil, 1); err == nil {
		t.Error("empty input did not error")
	}
	if _, err := MeanAroundMedian([][]float64{{1}}, 0); err == nil {
		t.Error("m=0 did not error")
	}
	if _, err := MeanAroundMedian([][]float64{{1}}, 2); err == nil {
		t.Error("m>n did not error")
	}
	if _, err := MeanAroundMedian([][]float64{{1}, {1, 2}}, 1); err == nil {
		t.Error("ragged input did not error")
	}
}

// Property: the trimmed mean of each coordinate lies inside the untrimmed
// coordinate range (robustness sanity).
func TestTrimmedMeanWithinRange(t *testing.T) {
	f := func(vals [7]float64) bool {
		vs := make([][]float64, 7)
		for i, x := range vals {
			if x != x { // NaN
				x = 0
			}
			vs[i] = []float64{clampFinite(x)}
		}
		got, err := TrimmedCoordMean(vs, 2)
		if err != nil {
			return false
		}
		lo, hi := vs[0][0], vs[0][0]
		for _, v := range vs {
			if v[0] < lo {
				lo = v[0]
			}
			if v[0] > hi {
				hi = v[0]
			}
		}
		return got[0] >= lo-1e-9 && got[0] <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clampFinite(x float64) float64 {
	const lim = 1e12
	switch {
	case x > lim:
		return lim
	case x < -lim:
		return -lim
	default:
		return x
	}
}
