// Package model defines the learning tasks of the reproduction: the paper's
// logistic-regression-with-MSE-loss model (§5.1), auxiliary convex models
// (linear regression, logistic NLL, the mean-estimation objective behind
// Theorem 1's lower bound), and a small MLP to exercise the non-convex
// regime of §3.
//
// All models expose the parameter vector w as a flat []float64 of length
// Dim(), so the rest of the stack (DP noise, GARs, attacks) is model
// agnostic, exactly as in the paper where everything operates on gradient
// vectors in R^d.
package model

import (
	"errors"
	"math"

	"dpbyz/internal/data"
	"dpbyz/internal/vecmath"
)

// Model is a differentiable learning task. Implementations must be
// stateless: all methods are pure functions of (w, batch), making them safe
// for concurrent use by many workers.
type Model interface {
	// Name identifies the model in logs and experiment records.
	Name() string
	// Dim returns the number of parameters d.
	Dim() int
	// Features returns the input feature dimension the model expects.
	Features() int
	// Loss returns the average loss of parameters w over the batch.
	Loss(w []float64, batch []data.Point) float64
	// Gradient writes the average gradient of the loss at w over the batch
	// into dst (length Dim()) and returns dst.
	Gradient(dst, w []float64, batch []data.Point) []float64
}

// Predictor is implemented by classification models that can score a point.
type Predictor interface {
	// Predict returns the model's probability that x has label 1.
	Predict(w []float64, x []float64) float64
}

// ErrBadDimension is returned by constructors given non-positive dimensions.
var ErrBadDimension = errors.New("model: non-positive dimension")

// evalGrain is the fixed number of points per evaluation chunk used by
// Accuracy and DatasetLoss. The chunk boundaries depend only on the dataset
// size — never on GOMAXPROCS or the vecmath parallelism cap — so the
// returned values are identical no matter how many cores execute the chunks.
const evalGrain = 1024

// evalChunks runs body(chunk) for every grain-sized chunk of n points,
// fanning the chunks across the vecmath worker budget when there is more
// than one. Each chunk index is processed exactly once.
func evalChunks(n int, body func(c, lo, hi int)) {
	chunks := (n + evalGrain - 1) / evalGrain
	runRange := func(cLo, cHi int) {
		for c := cLo; c < cHi; c++ {
			lo := c * evalGrain
			hi := lo + evalGrain
			if hi > n {
				hi = n
			}
			body(c, lo, hi)
		}
	}
	w := vecmath.Parallelism()
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		runRange(0, chunks)
		return
	}
	vecmath.RunChunked(chunks, w, runRange)
}

// Accuracy returns the fraction of points in ds whose thresholded prediction
// (at 0.5) matches the label. It returns 0 for an empty dataset. The scan is
// parallelized over fixed-size chunks of the dataset; the count is an exact
// integer, so the result does not depend on the degree of parallelism.
func Accuracy(m Predictor, w []float64, ds *data.Dataset) float64 {
	if ds == nil || ds.Len() == 0 {
		return 0
	}
	pts := ds.Points()
	n := len(pts)
	if n <= evalGrain {
		return float64(accuracyRange(m, w, pts)) / float64(n)
	}
	counts := make([]int, (n+evalGrain-1)/evalGrain)
	evalChunks(n, func(c, lo, hi int) {
		counts[c] = accuracyRange(m, w, pts[lo:hi])
	})
	correct := 0
	for _, c := range counts {
		correct += c
	}
	return float64(correct) / float64(n)
}

// accuracyRange counts correct thresholded predictions over pts.
func accuracyRange(m Predictor, w []float64, pts []data.Point) int {
	correct := 0
	for _, p := range pts {
		pred := 0.0
		if m.Predict(w, p.X) >= 0.5 {
			pred = 1
		}
		if pred == p.Y {
			correct++
		}
	}
	return correct
}

// DatasetLoss returns the average loss of w over the full dataset, computed
// as a fixed-grain chunked sum: chunk sums are produced independently (and
// concurrently when cores are available) and reduced in chunk order, so the
// value is identical at every parallelism level — though, beyond one grain,
// not bit-identical to a single flat Loss scan.
func DatasetLoss(m Model, w []float64, ds *data.Dataset) float64 {
	if ds == nil || ds.Len() == 0 {
		return 0
	}
	pts := ds.Points()
	n := len(pts)
	if n <= evalGrain {
		return m.Loss(w, pts)
	}
	sums := make([]float64, (n+evalGrain-1)/evalGrain)
	evalChunks(n, func(c, lo, hi int) {
		sums[c] = m.Loss(w, pts[lo:hi]) * float64(hi-lo)
	})
	var total float64
	for _, s := range sums {
		total += s
	}
	return total / float64(n)
}

// sigmoid is the numerically stable logistic function.
func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// affine returns w·x + bias where the bias is the last parameter; the
// feature dimension is len(w)-1. The dot product runs on the blocked kernel
// so loss evaluation keeps pace with the batched gradient path. Like the
// historical scalar loop, it ranges over x, tolerating a w that carries more
// features than the point (the cluster tests exercise dimension-confused
// workers that way).
func affine(w []float64, x []float64) float64 {
	return w[len(w)-1] + vecmath.DotBlocked(w[:len(x)], x)
}

// LogisticMSE is the paper's model: a logistic regressor trained with the
// mean-square error loss (§5.1), d = features + 1 parameters (bias last).
type LogisticMSE struct {
	features int
}

var (
	_ Model     = (*LogisticMSE)(nil)
	_ Predictor = (*LogisticMSE)(nil)
)

// NewLogisticMSE returns the paper's logistic-MSE model over the given
// feature count.
func NewLogisticMSE(features int) (*LogisticMSE, error) {
	if features <= 0 {
		return nil, ErrBadDimension
	}
	return &LogisticMSE{features: features}, nil
}

// Name implements Model.
func (m *LogisticMSE) Name() string { return "logistic-mse" }

// Dim implements Model.
func (m *LogisticMSE) Dim() int { return m.features + 1 }

// Features implements Model.
func (m *LogisticMSE) Features() int { return m.features }

// Predict implements Predictor.
func (m *LogisticMSE) Predict(w []float64, x []float64) float64 {
	return sigmoid(affine(w, x))
}

// Loss implements Model: mean over the batch of (sigmoid(w·x+b) − y)².
func (m *LogisticMSE) Loss(w []float64, batch []data.Point) float64 {
	var s float64
	for _, p := range batch {
		d := sigmoid(affine(w, p.X)) - p.Y
		s += d * d
	}
	return s / float64(len(batch))
}

// Gradient implements Model. dLoss/dz = 2(p − y)·p·(1 − p).
func (m *LogisticMSE) Gradient(dst, w []float64, batch []data.Point) []float64 {
	return affineBatch(dst, w, batch, nil, 0, dlossLogisticMSE)
}

// LogisticNLL is standard logistic regression with the cross-entropy loss,
// included as a second convex task.
type LogisticNLL struct {
	features int
}

var (
	_ Model     = (*LogisticNLL)(nil)
	_ Predictor = (*LogisticNLL)(nil)
)

// NewLogisticNLL returns a cross-entropy logistic model.
func NewLogisticNLL(features int) (*LogisticNLL, error) {
	if features <= 0 {
		return nil, ErrBadDimension
	}
	return &LogisticNLL{features: features}, nil
}

// Name implements Model.
func (m *LogisticNLL) Name() string { return "logistic-nll" }

// Dim implements Model.
func (m *LogisticNLL) Dim() int { return m.features + 1 }

// Features implements Model.
func (m *LogisticNLL) Features() int { return m.features }

// Predict implements Predictor.
func (m *LogisticNLL) Predict(w []float64, x []float64) float64 {
	return sigmoid(affine(w, x))
}

// Loss implements Model: mean binary cross-entropy, computed in the stable
// log-sum-exp form.
func (m *LogisticNLL) Loss(w []float64, batch []data.Point) float64 {
	var s float64
	for _, p := range batch {
		z := affine(w, p.X)
		// log(1+e^z) − y·z, stable for both signs of z.
		s += math.Max(z, 0) + math.Log1p(math.Exp(-math.Abs(z))) - p.Y*z
	}
	return s / float64(len(batch))
}

// Gradient implements Model: mean over the batch of (sigmoid(z) − y)·x.
func (m *LogisticNLL) Gradient(dst, w []float64, batch []data.Point) []float64 {
	return affineBatch(dst, w, batch, nil, 0, dlossLogisticNLL)
}

// LinearRegression is ordinary least squares with MSE loss, the simplest
// strongly convex task.
type LinearRegression struct {
	features int
}

var _ Model = (*LinearRegression)(nil)

// NewLinearRegression returns an OLS model.
func NewLinearRegression(features int) (*LinearRegression, error) {
	if features <= 0 {
		return nil, ErrBadDimension
	}
	return &LinearRegression{features: features}, nil
}

// Name implements Model.
func (m *LinearRegression) Name() string { return "linear-regression" }

// Dim implements Model.
func (m *LinearRegression) Dim() int { return m.features + 1 }

// Features implements Model.
func (m *LinearRegression) Features() int { return m.features }

// Loss implements Model: mean of (w·x + b − y)².
func (m *LinearRegression) Loss(w []float64, batch []data.Point) float64 {
	var s float64
	for _, p := range batch {
		d := affine(w, p.X) - p.Y
		s += d * d
	}
	return s / float64(len(batch))
}

// Gradient implements Model.
func (m *LinearRegression) Gradient(dst, w []float64, batch []data.Point) []float64 {
	return affineBatch(dst, w, batch, nil, 0, dlossLinearRegression)
}

// MeanEstimation is Theorem 1's lower-bound objective
// Q(w) = ½ E‖w − x‖² with x ~ N(x̄, σ²/d I): strongly convex with λ = μ = 1,
// minimized at w* = x̄. Its stochastic gradient on a batch is the average of
// (w − x) over the batch.
type MeanEstimation struct {
	dim int
}

var _ Model = (*MeanEstimation)(nil)

// NewMeanEstimation returns the mean-estimation objective in dimension d.
func NewMeanEstimation(dim int) (*MeanEstimation, error) {
	if dim <= 0 {
		return nil, ErrBadDimension
	}
	return &MeanEstimation{dim: dim}, nil
}

// Name implements Model.
func (m *MeanEstimation) Name() string { return "mean-estimation" }

// Dim implements Model.
func (m *MeanEstimation) Dim() int { return m.dim }

// Features implements Model.
func (m *MeanEstimation) Features() int { return m.dim }

// Loss implements Model: ½ mean ‖w − x‖² over the batch.
func (m *MeanEstimation) Loss(w []float64, batch []data.Point) float64 {
	var s float64
	for _, p := range batch {
		for j, xj := range p.X {
			d := w[j] - xj
			s += d * d
		}
	}
	return s / (2 * float64(len(batch)))
}

// Gradient implements Model: mean of (w − x) over the batch, accumulated
// four samples per sweep (x-major, cache-friendly — the historical kernel
// walked the batch once per coordinate).
func (m *MeanEstimation) Gradient(dst, w []float64, batch []data.Point) []float64 {
	for j := range dst {
		dst[j] = 0
	}
	i := 0
	for ; i+4 <= len(batch); i += 4 {
		vecmath.Axpy4(dst, 1, batch[i].X, 1, batch[i+1].X, 1, batch[i+2].X, 1, batch[i+3].X)
	}
	for ; i < len(batch); i++ {
		vecmath.Axpy(1, batch[i].X, dst)
	}
	inv := 1 / float64(len(batch))
	for j := range dst {
		dst[j] = w[j] - dst[j]*inv
	}
	return dst
}

// Suboptimality returns Q(w) − Q* for the mean-estimation objective, which
// equals ½‖w − center‖² (derivation in the paper's Theorem 1 proof).
func (m *MeanEstimation) Suboptimality(w, center []float64) float64 {
	var s float64
	for j := range w {
		d := w[j] - center[j]
		s += d * d
	}
	return s / 2
}
