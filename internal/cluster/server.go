package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"dpbyz/internal/gar"
	"dpbyz/internal/metrics"
	"dpbyz/internal/vecmath"
)

// DefaultRoundTimeout bounds how long the server waits for gradients each
// round before substituting zero vectors for the missing workers.
const DefaultRoundTimeout = 10 * time.Second

// ServerConfig configures the parameter server.
type ServerConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// GAR is the aggregation rule; its N() is the number of workers the
	// server waits for before starting.
	GAR gar.GAR
	// Dim is the model dimension d.
	Dim int
	// Steps is the number of synchronous rounds.
	Steps int
	// LearningRate and Momentum define the Eq. 9 update.
	LearningRate float64
	Momentum     float64
	// InitParams optionally sets w_0 (defaults to the zero vector).
	InitParams []float64
	// RoundTimeout bounds each gradient-collection phase; missing gradients
	// become zero vectors per §2.1 (default DefaultRoundTimeout).
	RoundTimeout time.Duration
	// Logf, when non-nil, receives progress lines (e.g. log.Printf).
	Logf func(format string, args ...any)
}

func (c *ServerConfig) validate() error {
	if c.GAR == nil {
		return errors.New("cluster: nil aggregation rule")
	}
	if c.Dim <= 0 {
		return fmt.Errorf("cluster: non-positive dim %d", c.Dim)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("cluster: non-positive steps %d", c.Steps)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("cluster: non-positive learning rate %v", c.LearningRate)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("cluster: momentum %v outside [0, 1)", c.Momentum)
	}
	if c.InitParams != nil && len(c.InitParams) != c.Dim {
		return fmt.Errorf("cluster: init params dim %d, want %d", len(c.InitParams), c.Dim)
	}
	return nil
}

// ServerResult is the outcome of a full networked training run.
type ServerResult struct {
	// Params is the final parameter vector.
	Params []float64
	// History records the aggregate-gradient norm per round in the Loss
	// field (the server holds no data and cannot compute losses, matching
	// the paper's model).
	History *metrics.History
	// MissedGradients counts (worker, round) pairs that timed out and were
	// replaced by zero vectors.
	MissedGradients int
}

// Server drives synchronous distributed SGD over TCP.
type Server struct {
	cfg      ServerConfig
	listener net.Listener
	logf     func(string, ...any)
}

// NewServer binds the listen socket so that Addr() is known before any
// worker starts. Call Run to begin training.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = DefaultRoundTimeout
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Addr, err)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{cfg: cfg, listener: ln, logf: logf}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close releases the listen socket. Run closes it on return; Close is for
// aborting a server that never ran.
func (s *Server) Close() error { return s.listener.Close() }

// workerConn tracks one registered worker connection.
type workerConn struct {
	id int
	c  *conn
}

// Run accepts the expected number of workers, executes the configured
// rounds and returns the final model. It always closes the listener and
// all connections, and waits for its reader goroutines, before returning.
// The context aborts both the accept phase and training between rounds.
func (s *Server) Run(ctx context.Context) (*ServerResult, error) {
	defer s.listener.Close()
	n := s.cfg.GAR.N()

	workers, err := s.acceptWorkers(ctx, n)
	if err != nil {
		return nil, err
	}

	// Fan-in: every connection gets a reader goroutine pushing into a
	// shared inbox. runDone unblocks readers stuck on a full inbox during
	// shutdown; closing the connections unblocks readers stuck in Decode.
	inbox := make(chan Gradient, n)
	runDone := make(chan struct{})
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *workerConn) {
			defer wg.Done()
			for {
				env, err := w.c.receive(time.Time{})
				if err != nil {
					return
				}
				if env.Gradient == nil {
					s.logf("worker %d sent non-gradient message", w.id)
					return
				}
				select {
				case inbox <- *env.Gradient:
				case <-runDone:
					return
				}
			}
		}(w)
	}
	defer func() {
		close(runDone)
		for _, w := range workers {
			if cerr := w.c.close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
				s.logf("close worker %d: %v", w.id, cerr)
			}
		}
		wg.Wait()
	}()

	w := make([]float64, s.cfg.Dim)
	if s.cfg.InitParams != nil {
		copy(w, s.cfg.InitParams)
	}
	velocity := make([]float64, s.cfg.Dim)
	history := &metrics.History{}
	missed := 0
	submissions := make([][]float64, n)
	// agg is reused every round via the GAR's pooled AggregateInto path, and
	// zeros stands in for every timed-out worker (Aggregate never mutates its
	// inputs, so one shared zero vector is safe), so the steady-state round
	// loop allocates no gradient-sized slices.
	agg := make([]float64, s.cfg.Dim)
	zeros := make([]float64, s.cfg.Dim)

	finish := func(finalW []float64) {
		deadline := time.Now().Add(s.cfg.RoundTimeout)
		for _, wk := range workers {
			msg := Params{Step: s.cfg.Steps, Weights: finalW, Done: true}
			if err := wk.c.send(envelope{Params: &msg}, deadline); err != nil {
				s.logf("final broadcast to worker %d: %v", wk.id, err)
			}
		}
	}

	for step := 0; step < s.cfg.Steps; step++ {
		select {
		case <-ctx.Done():
			finish(w)
			return nil, fmt.Errorf("cluster: round %d: %w", step, ctx.Err())
		default:
		}

		deadline := time.Now().Add(s.cfg.RoundTimeout)
		for _, wk := range workers {
			msg := Params{Step: step, Weights: w}
			if err := wk.c.send(envelope{Params: &msg}, deadline); err != nil {
				s.logf("broadcast to worker %d: %v (treating as mute)", wk.id, err)
			}
		}

		for i := range submissions {
			submissions[i] = nil
		}
		received := 0
		timer := time.NewTimer(s.cfg.RoundTimeout)
	collect:
		for received < n {
			select {
			case g := <-inbox:
				if g.Step != step || g.WorkerID < 0 || g.WorkerID >= n ||
					len(g.Grad) != s.cfg.Dim || submissions[g.WorkerID] != nil {
					s.logf("discarding stale/bad gradient (worker %d, step %d)", g.WorkerID, g.Step)
					continue
				}
				submissions[g.WorkerID] = g.Grad
				received++
			case <-timer.C:
				break collect
			case <-ctx.Done():
				break collect
			}
		}
		timer.Stop()

		// Missing gradients become zero vectors (§2.1).
		for i := range submissions {
			if submissions[i] == nil {
				submissions[i] = zeros
				missed++
			}
		}

		if err := gar.AggregateInto(s.cfg.GAR, agg, submissions); err != nil {
			finish(w)
			return nil, fmt.Errorf("cluster: round %d aggregate: %w", step, err)
		}
		for i := range velocity {
			velocity[i] = s.cfg.Momentum*velocity[i] + agg[i]
			w[i] -= s.cfg.LearningRate * velocity[i]
		}
		if !vecmath.AllFinite(w) {
			finish(w)
			return nil, fmt.Errorf("cluster: parameters diverged at round %d", step)
		}
		history.Append(metrics.StepRecord{
			Step:     step,
			Loss:     vecmath.Norm(agg), // server-side proxy: aggregate norm
			Accuracy: math.NaN(),
			VNRatio:  math.NaN(),
		})
	}

	finish(w)
	return &ServerResult{Params: w, History: history, MissedGradients: missed}, nil
}

// acceptWorkers waits for n distinct Hello messages.
func (s *Server) acceptWorkers(ctx context.Context, n int) ([]*workerConn, error) {
	workers := make([]*workerConn, 0, n)
	seen := make(map[int]bool, n)
	// Abort a blocking Accept on context cancellation by closing the
	// listener; stop tears the watcher down on the normal path.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.listener.Close()
		case <-stop:
		}
	}()
	for len(workers) < n {
		raw, err := s.listener.Accept()
		if err != nil {
			for _, w := range workers {
				if cerr := w.c.close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
					s.logf("close during abort: %v", cerr)
				}
			}
			if ctx.Err() != nil {
				return nil, fmt.Errorf("cluster: accept: %w", ctx.Err())
			}
			return nil, fmt.Errorf("cluster: accept: %w", err)
		}
		c := newConn(raw)
		env, err := c.receive(time.Now().Add(s.cfg.RoundTimeout))
		if err != nil || env.Hello == nil {
			s.logf("rejecting connection without hello: %v", err)
			_ = c.close()
			continue
		}
		id := env.Hello.WorkerID
		if id < 0 || id >= n || seen[id] {
			s.logf("rejecting hello with bad id %d", id)
			_ = c.close()
			continue
		}
		seen[id] = true
		workers = append(workers, &workerConn{id: id, c: c})
		s.logf("worker %d joined (%d/%d)", id, len(workers), n)
	}
	return workers, nil
}
