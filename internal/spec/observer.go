package spec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"dpbyz/internal/metrics"
)

// StepEvent is one completed step as seen by an Observer.
type StepEvent struct {
	// Step is the 0-based step index.
	Step int
	// Loss is the step's training-loss metric (the aggregate-norm proxy on
	// the cluster backend).
	Loss float64
	// Accuracy is the test accuracy, NaN when not measured this step.
	Accuracy float64
	// VNRatio is the empirical VN ratio, NaN when not measured this step.
	VNRatio float64
	// Params is a read-only view of the current parameter vector, valid only
	// for the duration of the OnStep call; copy to retain.
	Params []float64
}

// Observer streams per-step metrics out of a running backend. Observers run
// on the training goroutine: a slow observer slows the run, and a non-nil
// error aborts it. When no observer is installed the backends keep their
// zero-allocation steady state — the hook is nil and never constructed.
type Observer interface {
	OnStep(ev StepEvent) error
}

// HistorySink is an in-memory Observer: it accumulates every step into a
// metrics.History, the same structure the backends return, so streaming and
// batch consumers share one type.
type HistorySink struct {
	h *metrics.History
}

// NewHistorySink returns an empty in-memory sink.
func NewHistorySink() *HistorySink {
	return &HistorySink{h: &metrics.History{}}
}

// OnStep implements Observer.
func (s *HistorySink) OnStep(ev StepEvent) error {
	s.h.Append(metrics.StepRecord{
		Step: ev.Step, Loss: ev.Loss, Accuracy: ev.Accuracy, VNRatio: ev.VNRatio,
	})
	return nil
}

// History returns the accumulated trace.
func (s *HistorySink) History() *metrics.History { return s.h }

// JSONLSink writes one JSON object per step to an io.Writer — a streaming
// metrics log that external tooling can tail while the run is live.
// Unmeasured metrics (NaN) are omitted rather than emitted as invalid JSON.
//
// The sink buffers: lines reach the underlying writer in batches, so the
// per-step cost is a memory copy, not a write syscall. Callers MUST Close
// (or Flush) the sink when the run ends — an unflushed buffer is exactly
// how a final JSONL line ends up truncated.
type JSONLSink struct {
	mu  sync.Mutex
	buf *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing buffered JSON lines to w. Close it
// to flush the final lines.
func NewJSONLSink(w io.Writer) *JSONLSink {
	buf := bufio.NewWriter(w)
	return &JSONLSink{buf: buf, enc: json.NewEncoder(buf)}
}

// jsonlRecord is the wire form of one step. Pointer fields drop NaN metrics
// from the output instead of producing invalid JSON.
type jsonlRecord struct {
	Step     int      `json:"step"`
	Loss     float64  `json:"loss"`
	Accuracy *float64 `json:"accuracy,omitempty"`
	VNRatio  *float64 `json:"vnRatio,omitempty"`
}

// OnStep implements Observer.
func (s *JSONLSink) OnStep(ev StepEvent) error {
	rec := jsonlRecord{Step: ev.Step, Loss: ev.Loss}
	if !math.IsNaN(ev.Accuracy) {
		rec.Accuracy = &ev.Accuracy
	}
	if !math.IsNaN(ev.VNRatio) {
		rec.VNRatio = &ev.VNRatio
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(rec)
}

// Flush pushes every buffered line to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Flush()
}

// Close implements io.Closer: it flushes the buffer. The underlying writer
// is the caller's to close — a sink over os.Stdout must not close it.
func (s *JSONLSink) Close() error { return s.Flush() }

// ProgressSink prints a one-line progress report every k steps (and for
// step 0), for interactive CLI runs.
type ProgressSink struct {
	w     io.Writer
	every int
}

// NewProgressSink reports to w every `every` steps (every <= 0 means 100).
func NewProgressSink(w io.Writer, every int) *ProgressSink {
	if every <= 0 {
		every = 100
	}
	return &ProgressSink{w: w, every: every}
}

// OnStep implements Observer.
func (s *ProgressSink) OnStep(ev StepEvent) error {
	if ev.Step%s.every != 0 {
		return nil
	}
	if math.IsNaN(ev.Accuracy) {
		_, err := fmt.Fprintf(s.w, "step %d: loss=%.6g\n", ev.Step, ev.Loss)
		return err
	}
	_, err := fmt.Fprintf(s.w, "step %d: loss=%.6g acc=%.4f\n", ev.Step, ev.Loss, ev.Accuracy)
	return err
}
