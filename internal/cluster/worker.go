package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dpbyz/internal/attack"
	"dpbyz/internal/data"
	"dpbyz/internal/dp"
	"dpbyz/internal/model"
	"dpbyz/internal/randx"
	"dpbyz/internal/vecmath"
)

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Addr is the server address to dial.
	Addr string
	// Transport is the communication substrate (nil means TCP). It must
	// match the server's transport.
	Transport Transport
	// MaxFrameBytes caps the payload length the server may declare (0
	// means DefaultMaxFrameBytes).
	MaxFrameBytes int
	// WorkerID is this worker's unique id in [0, n).
	WorkerID int
	// Model is the learning task (must match the server's Dim).
	Model model.Model
	// Train is this worker's local shard of the training data.
	Train *data.Dataset
	// BatchSize is the per-round sample size b.
	BatchSize int
	// ClipNorm is G_max; zero disables clipping.
	ClipNorm float64
	// Mechanism is the worker's local DP randomizer; nil sends gradients in
	// the clear (still unencrypted either way, per the paper's Remark 1).
	Mechanism dp.Mechanism
	// Accountant, when non-nil, records one private release per round.
	Accountant *dp.Accountant
	// Momentum is the worker-side momentum coefficient (the distributed-
	// momentum technique the paper's stack uses). The momentum state
	// accumulates raw batch gradients and the worker submits
	// noise(clip(m_t)), matching the paper's experimental pipeline; set
	// MomentumPostNoise for the theory-faithful per-sample-clip ordering
	// (see simulate.Config.MomentumPostNoise for the trade-off).
	Momentum float64
	// MomentumPostNoise applies momentum after clipping and noising.
	MomentumPostNoise bool
	// Attack, when non-nil, makes this worker Byzantine: each round it
	// crafts its submission from its own honest gradient estimate. Unlike
	// the simulator's omniscient attacker, a networked Byzantine worker
	// only observes its own data. Stateful attacks (attack.AdaptiveAttack)
	// observe an estimate of each round's aggregate recovered from
	// successive parameter broadcasts; do not share one attack instance
	// across workers — Craft mutates attack-local state.
	Attack attack.Attack
	// LearningRate, when positive, lets an adaptive attack rescale observed
	// parameter deltas back to gradient magnitude ((w_t − w_{t+1})/γ); zero
	// feeds the attack raw deltas, which only changes the observed scale.
	LearningRate float64
	// Seed drives batch sampling and noise.
	Seed uint64
	// DialTimeout bounds the initial connection (default 5s).
	DialTimeout time.Duration
	// MaxRounds, when positive, makes the worker exit after that many
	// rounds even without a Done message (used to model crashed workers).
	MaxRounds int
	// RoundDelay, when positive, sleeps before every gradient submission —
	// a straggler model for exercising the server's round timeout.
	RoundDelay time.Duration
}

func (c *WorkerConfig) validate() error {
	if c.Addr == "" {
		return errors.New("cluster: empty server address")
	}
	if c.WorkerID < 0 {
		return fmt.Errorf("cluster: negative worker id %d", c.WorkerID)
	}
	if c.Model == nil {
		return errors.New("cluster: nil model")
	}
	if c.Train == nil {
		return errors.New("cluster: nil training data")
	}
	if c.Model.Features() != c.Train.Dim() {
		return fmt.Errorf("cluster: model expects %d features, data has %d",
			c.Model.Features(), c.Train.Dim())
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("cluster: non-positive batch size %d", c.BatchSize)
	}
	if c.ClipNorm < 0 {
		return fmt.Errorf("cluster: negative clip norm %v", c.ClipNorm)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("cluster: momentum %v outside [0, 1)", c.Momentum)
	}
	if err := validateMaxFrame(c.MaxFrameBytes, c.Model.Dim()); err != nil {
		return err
	}
	return nil
}

// WorkerResult summarizes a worker's run.
type WorkerResult struct {
	// Rounds is the number of gradients the worker submitted.
	Rounds int
	// FinalParams is the last parameter vector received from the server
	// (the trained model when the run completed). It is the worker's own
	// copy, never an alias of connection internals.
	FinalParams []float64
}

// RunWorker connects to the server and participates in training until the
// server signals completion, the context is cancelled, or MaxRounds is
// reached.
func RunWorker(ctx context.Context, cfg WorkerConfig) (*WorkerResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	transport := cfg.Transport
	if transport == nil {
		transport = DefaultTransport
	}
	dialCtx, dialCancel := context.WithTimeout(ctx, dialTimeout)
	raw, err := transport.Dial(dialCtx, cfg.Addr)
	dialCancel()
	if err != nil {
		return nil, err
	}
	c := newConnMax(raw, cfg.MaxFrameBytes)
	defer c.close()

	// Unblock the blocking receive on cancellation by aborting the raw
	// conn; scratch recycling stays with the deferred close above, which
	// runs only after the receive loop has exited.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			_ = c.abort()
		case <-stop:
		}
	}()

	if err := c.sendHello(Hello{WorkerID: cfg.WorkerID}, time.Now().Add(dialTimeout)); err != nil {
		return nil, fmt.Errorf("cluster: hello: %w", err)
	}

	root := randx.New(cfg.Seed)
	batcher, err := data.NewBatcher(cfg.Train, cfg.BatchSize, root.Derive(1, uint64(cfg.WorkerID)))
	if err != nil {
		return nil, fmt.Errorf("cluster: batcher: %w", err)
	}
	noise := root.Derive(2, uint64(cfg.WorkerID))
	attackRng := root.Derive(3, uint64(cfg.WorkerID))
	grad := make([]float64, cfg.Model.Dim())
	clipBuf := make([]float64, cfg.Model.Dim())
	var momentum []float64
	if cfg.Momentum > 0 {
		momentum = make([]float64, cfg.Model.Dim())
	}
	// A stateful Byzantine worker reconstructs the server's aggregate
	// direction from successive parameter broadcasts: the observed delta
	// (w_t − w_{t+1})/γ is the momentum-filtered aggregate — exactly the
	// signal a real state-aware attacker has in the networked threat model.
	var adaptive attack.AdaptiveAttack
	var prevParams, aggEstimate []float64
	var honestView [][]float64
	if aa, ok := cfg.Attack.(attack.AdaptiveAttack); ok {
		adaptive = aa
		prevParams = make([]float64, cfg.Model.Dim())
		aggEstimate = make([]float64, cfg.Model.Dim())
		honestView = [][]float64{grad}
	}

	res := &WorkerResult{}
	for {
		m, err := c.receive(time.Time{})
		if err != nil {
			if ctx.Err() != nil {
				return res, fmt.Errorf("cluster: worker %d: %w", cfg.WorkerID, ctx.Err())
			}
			return res, fmt.Errorf("cluster: worker %d receive: %w", cfg.WorkerID, err)
		}
		if m.kind != msgParams {
			return res, fmt.Errorf("cluster: worker %d: %w", cfg.WorkerID, ErrBadMessage)
		}
		params := &m.params
		// params.Weights lives in the conn's reusable decode buffer, which
		// the next receive overwrites and close recycles to other conns:
		// the result must own its own copy.
		if cap(res.FinalParams) < len(params.Weights) {
			res.FinalParams = make([]float64, len(params.Weights))
		}
		res.FinalParams = res.FinalParams[:len(params.Weights)]
		copy(res.FinalParams, params.Weights)
		if params.Done {
			return res, nil
		}
		if adaptive != nil {
			if res.Rounds > 0 {
				invLR := 1.0
				if cfg.LearningRate > 0 {
					invLR = 1 / cfg.LearningRate
				}
				for j := range aggEstimate {
					aggEstimate[j] = (prevParams[j] - params.Weights[j]) * invLR
				}
				adaptive.Observe(params.Step-1, aggEstimate, honestView)
			}
			copy(prevParams, params.Weights)
		}

		if cfg.RoundDelay > 0 {
			select {
			case <-ctx.Done():
				return res, fmt.Errorf("cluster: worker %d: %w", cfg.WorkerID, ctx.Err())
			case <-time.After(cfg.RoundDelay):
			}
		}
		batch := batcher.Next()
		if momentum != nil && !cfg.MomentumPostNoise {
			// Paper pipeline: momentum over raw gradients, then clip, then
			// noise (the clip bounds every submission to G_max).
			cfg.Model.Gradient(grad, params.Weights, batch)
			for j := range momentum {
				momentum[j] = cfg.Momentum*momentum[j] + grad[j]
			}
			copy(grad, momentum)
			if cfg.ClipNorm > 0 {
				vecmath.ClipL2(grad, cfg.ClipNorm)
			}
			if cfg.Mechanism != nil {
				cfg.Mechanism.Perturb(grad, noise)
				if cfg.Accountant != nil {
					cfg.Accountant.Record()
				}
			}
		} else {
			// Theory pipeline: per-sample clipping keeps the 2*Gmax/b
			// sensitivity assumption exact.
			model.ClippedGradientWithNorms(cfg.Model, grad, clipBuf,
				params.Weights, batch, batcher.BatchSqNorms(), cfg.ClipNorm)
			if cfg.Mechanism != nil {
				cfg.Mechanism.Perturb(grad, noise)
				if cfg.Accountant != nil {
					cfg.Accountant.Record()
				}
			}
			if momentum != nil {
				for j := range momentum {
					momentum[j] = cfg.Momentum*momentum[j] + grad[j]
				}
				copy(grad, momentum)
			}
		}
		submission := grad
		if cfg.Attack != nil {
			crafted, err := cfg.Attack.Craft([][]float64{grad}, attackRng)
			if err != nil {
				return res, fmt.Errorf("cluster: worker %d attack: %w", cfg.WorkerID, err)
			}
			submission = crafted
		}

		msg := Gradient{WorkerID: cfg.WorkerID, Step: params.Step, Grad: submission}
		if err := c.sendGradient(msg, time.Now().Add(dialTimeout)); err != nil {
			return res, fmt.Errorf("cluster: worker %d send: %w", cfg.WorkerID, err)
		}
		res.Rounds++
		if cfg.MaxRounds > 0 && res.Rounds >= cfg.MaxRounds {
			return res, nil
		}
	}
}
