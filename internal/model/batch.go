package model

import (
	"math"
	"sync"

	"dpbyz/internal/data"
	"dpbyz/internal/vecmath"
)

// BatchGradienter is the batched fast path of ClippedGradient: a single
// fused sweep over the batch that computes every per-sample gradient, clips
// it to the given L2 norm and accumulates the average into dst, instead of
// materializing one single-point Gradient call per sample. All models in
// this package implement it; ClippedGradient dispatches onto it
// automatically, so callers never need to name the interface.
type BatchGradienter interface {
	Model
	// ClippedBatchGradient writes into dst (length Dim()) the average over
	// the batch of per-sample gradients clipped to L2 norm clip, using buf
	// (length Dim()) as scratch, and returns dst. clip must be positive.
	// xSq, when non-nil, carries ‖X‖² per batch point (data.Batcher serves
	// it from the dataset's construction-time cache), sparing the kernels
	// that price clipping from feature norms a per-sample recomputation;
	// nil means "compute as needed".
	ClippedBatchGradient(dst, buf, w []float64, batch []data.Point, xSq []float64, clip float64) []float64
}

var (
	_ BatchGradienter = (*LogisticMSE)(nil)
	_ BatchGradienter = (*LogisticNLL)(nil)
	_ BatchGradienter = (*LinearRegression)(nil)
	_ BatchGradienter = (*MeanEstimation)(nil)
	_ BatchGradienter = (*MLP)(nil)
)

// dloss* return dLoss/dz at pre-activation z and label y; the per-sample
// gradient of an affine model is then g·[x, 1].
func dlossLogisticMSE(z, y float64) float64 {
	p := sigmoid(z)
	return 2 * (p - y) * p * (1 - p)
}

func dlossLogisticNLL(z, y float64) float64 { return sigmoid(z) - y }

func dlossLinearRegression(z, y float64) float64 { return 2 * (z - y) }

// affineSampleCoeff returns the (possibly clipped) per-sample coefficient g
// for one point of an affine model: the per-sample gradient g·[x, 1] has
// norm |g|·√(‖x‖²+1), so clipping reduces to rescaling the scalar. With
// clip <= 0 the raw coefficient is returned. The kernels range over the
// point's own width (as the historical scalar loops did), so
// dimension-confused inputs degrade instead of panicking here.
func affineSampleCoeff(w []float64, p data.Point, xSq float64, haveSq bool, clip float64,
	dloss func(z, y float64) float64) float64 {
	if clip <= 0 {
		// Raw batch gradient: no clipping, so the feature norm is never
		// needed and the fused pass degenerates to a plain blocked dot.
		return dloss(vecmath.DotBlocked(w[:len(p.X)], p.X)+w[len(w)-1], p.Y)
	}
	var dot, sq float64
	if haveSq {
		dot = vecmath.DotBlocked(w[:len(p.X)], p.X)
		sq = xSq
	} else {
		dot, sq = vecmath.DotSqNorm(w[:len(p.X)], p.X)
	}
	g := dloss(dot+w[len(w)-1], p.Y)
	if g != 0 {
		if norm := math.Abs(g) * math.Sqrt(sq+1); norm > clip {
			g *= clip / norm
		}
	}
	return g
}

// affineBatch is the shared batched kernel of the three affine models, for
// both the raw (clip <= 0) and per-sample-clipped (clip > 0) batch
// gradients. Samples are processed four at a time: the four coefficients
// are computed first, then one fused Axpy4 sweep accumulates them, touching
// each dst coordinate once per block instead of once per sample.
func affineBatch(dst, w []float64, batch []data.Point, xSq []float64, clip float64,
	dloss func(z, y float64) float64) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	f := len(dst) - 1
	var gs [4]float64
	i := 0
	for ; i+4 <= len(batch); i += 4 {
		for k := 0; k < 4; k++ {
			var sq float64
			if xSq != nil {
				sq = xSq[i+k]
			}
			g := affineSampleCoeff(w, batch[i+k], sq, xSq != nil, clip, dloss)
			gs[k] = g
			dst[f] += g
		}
		vecmath.Axpy4(dst, gs[0], batch[i].X, gs[1], batch[i+1].X,
			gs[2], batch[i+2].X, gs[3], batch[i+3].X)
	}
	for ; i < len(batch); i++ {
		var sq float64
		if xSq != nil {
			sq = xSq[i]
		}
		g := affineSampleCoeff(w, batch[i], sq, xSq != nil, clip, dloss)
		vecmath.Axpy(g, batch[i].X, dst[:len(batch[i].X)])
		dst[f] += g
	}
	inv := 1 / float64(len(batch))
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// ClippedBatchGradient implements BatchGradienter.
func (m *LogisticMSE) ClippedBatchGradient(dst, _, w []float64, batch []data.Point, xSq []float64, clip float64) []float64 {
	return affineBatch(dst, w, batch, xSq, clip, dlossLogisticMSE)
}

// ClippedBatchGradient implements BatchGradienter.
func (m *LogisticNLL) ClippedBatchGradient(dst, _, w []float64, batch []data.Point, xSq []float64, clip float64) []float64 {
	return affineBatch(dst, w, batch, xSq, clip, dlossLogisticNLL)
}

// ClippedBatchGradient implements BatchGradienter.
func (m *LinearRegression) ClippedBatchGradient(dst, _, w []float64, batch []data.Point, xSq []float64, clip float64) []float64 {
	return affineBatch(dst, w, batch, xSq, clip, dlossLinearRegression)
}

// ClippedBatchGradient implements BatchGradienter. The per-sample gradient
// is w − x with ‖w − x‖² = ‖w‖² − 2·w·x + ‖x‖², so one fused pass per
// sample yields the clip factor s and the update decomposes as
// (Σ s_i)·w − Σ s_i·x_i, touching d coordinates once per sample.
func (m *MeanEstimation) ClippedBatchGradient(dst, _, w []float64, batch []data.Point, xSq []float64, clip float64) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	wSq := vecmath.SqNorm(w)
	var sSum float64
	var ss [4]float64
	sampleScale := func(i int) float64 {
		var dot, sq float64
		if xSq != nil {
			dot = vecmath.DotBlocked(w, batch[i].X)
			sq = xSq[i]
		} else {
			dot, sq = vecmath.DotSqNorm(w, batch[i].X)
		}
		normSq := wSq - 2*dot + sq
		if normSq > clip*clip {
			return clip / math.Sqrt(normSq)
		}
		return 1
	}
	i := 0
	for ; i+4 <= len(batch); i += 4 {
		for k := 0; k < 4; k++ {
			s := sampleScale(i + k)
			ss[k] = s
			sSum += s
		}
		vecmath.Axpy4(dst, -ss[0], batch[i].X, -ss[1], batch[i+1].X,
			-ss[2], batch[i+2].X, -ss[3], batch[i+3].X)
	}
	for ; i < len(batch); i++ {
		s := sampleScale(i)
		vecmath.Axpy(-s, batch[i].X, dst)
		sSum += s
	}
	vecmath.Axpy(sSum, w, dst)
	inv := 1 / float64(len(batch))
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// ClippedBatchGradient implements BatchGradienter: per-sample
// backpropagation into buf with the squared norm accumulated as
// coefficients are produced, then one scaled accumulation into dst. The
// feature-norm cache is of no use here (the clip prices the full gradient
// norm), so xSq is ignored. The hidden-activation scratch is pooled, so the
// steady state allocates nothing.
func (m *MLP) ClippedBatchGradient(dst, buf, w []float64, batch []data.Point, _ []float64, clip float64) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	hp := getHidden(m.hidden)
	hBuf := *hp
	for _, p := range batch {
		sq := m.sampleGradient(buf, w, p, hBuf)
		s := 1.0
		if sq > clip*clip {
			s = clip / math.Sqrt(sq)
		}
		vecmath.Axpy(s, buf, dst)
	}
	putHidden(hp)
	inv := 1 / float64(len(batch))
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// hiddenPool recycles MLP hidden-activation scratch so Loss/Predict/
// gradient evaluations allocate nothing on the steady state of a training
// loop (all buffers in one run share the hidden width).
var hiddenPool = sync.Pool{New: func() any { return new([]float64) }}

// getHidden returns a pooled scratch slice of length n.
//
//dpbyz:scratch
func getHidden(n int) *[]float64 {
	p := hiddenPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// putHidden returns a scratch slice to the pool.
func putHidden(p *[]float64) { hiddenPool.Put(p) }
