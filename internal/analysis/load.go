package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked analysis unit: a module package (optionally
// including its in-package test files) or an external (_test) test package.
type Package struct {
	// ImportPath is the package's import path; external test packages get
	// the conventional "path_test" suffix.
	ImportPath string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the package directory on disk.
	Dir string
	// Files holds the parsed files of the unit.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the checker's fact tables for Files.
	Info *types.Info
}

// A Module is a set of loaded packages sharing one FileSet plus the lazily
// built module-wide directive and registry indexes the analyzers consult.
type Module struct {
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Dir is the module root (the directory holding go.mod); empty for
	// synthetic test modules.
	Dir string
	// Packages are the loaded analysis units.
	Packages []*Package

	// scratchFuncs indexes //dpbyz:scratch-annotated functions by their
	// types.Func.FullName (e.g. "dpbyz/internal/cluster.getScratch").
	scratchFuncs map[string]bool
	// carrierTypes indexes //dpbyz:scratch-annotated named types by
	// "pkgpath.Name".
	carrierTypes map[string]bool
	// registries caches the extracted registry-name table; see registryref.
	registries map[string][]string
}

// LoadConfig tunes Load.
type LoadConfig struct {
	// Dir is the working directory for package pattern resolution (the
	// module root or any directory within it).
	Dir string
	// Tests includes in-package _test.go files in each unit and adds the
	// external test packages as separate units.
	Tests bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath    string
	Name          string
	Dir           string
	GoFiles       []string
	CgoFiles      []string
	TestGoFiles   []string
	XTestGoFiles  []string
	Module        *struct{ Dir string }
	Error         *struct{ Err string }
	DepOnly       bool
	ForTest       string
	Incomplete    bool
	IgnoredGoFile []string
}

// Load enumerates patterns with `go list`, parses and type-checks every
// matched package against the source importer, and returns the module. It
// needs no network: the module has no external dependencies and the standard
// library is type-checked from GOROOT source.
func Load(cfg LoadConfig, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(cfg.Dir, patterns)
	if err != nil {
		return nil, err
	}
	m := &Module{Fset: token.NewFileSet()}
	imp := importer.ForCompiler(m.Fset, "source", nil)
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if m.Dir == "" && lp.Module != nil {
			m.Dir = lp.Module.Dir
		}
		units := [][]string{append(append([]string{}, lp.GoFiles...), lp.CgoFiles...)}
		paths := []string{lp.ImportPath}
		if cfg.Tests {
			units[0] = append(units[0], lp.TestGoFiles...)
			if len(lp.XTestGoFiles) > 0 {
				units = append(units, lp.XTestGoFiles)
				paths = append(paths, lp.ImportPath+"_test")
			}
		}
		for i, names := range units {
			if len(names) == 0 {
				continue
			}
			files, err := parseFiles(m.Fset, lp.Dir, names)
			if err != nil {
				return nil, err
			}
			pkg, err := checkFiles(m.Fset, paths[i], files, imp)
			if err != nil {
				return nil, err
			}
			pkg.Dir = lp.Dir
			m.Packages = append(m.Packages, pkg)
		}
	}
	return m, nil
}

// LoadDir parses and type-checks the single package rooted at dir — every
// non-test .go file, outside of `go list`'s view. The atest harness uses it
// to load testdata packages, which go list deliberately ignores. Imports
// (including this module's own packages) resolve through the source importer
// exactly as in Load; Module.Dir is the enclosing module root, so registryref
// finds the real registries.
func LoadDir(dir string) (*Module, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: read %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	m := &Module{Fset: token.NewFileSet(), Dir: FindModuleRoot(dir)}
	files, err := parseFiles(m.Fset, dir, names)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(m.Fset, "source", nil)
	pkg, err := checkFiles(m.Fset, filepath.Base(dir), files, imp)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	m.Packages = append(m.Packages, pkg)
	return m, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod, returning "" if none is found. Used by callers (unit-mode vettool,
// tests) that know a package directory but not the module root.
func FindModuleRoot(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// goList runs `go list -json` for the patterns and decodes the package metas.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// parseFiles parses the named files (relative to dir) with comments retained,
// since the directive and waiver comments are the analyzers' inputs.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// checkFiles type-checks one unit. Type errors fail the load: the analyzers
// assume well-typed input, and the module's own build gate guarantees it.
func checkFiles(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	if len(errs) > 0 {
		const max = 8
		msgs := make([]string, 0, max+1)
		for i, e := range errs {
			if i == max {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-max))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type-check %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	name := importPath
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{ImportPath: importPath, Name: name, Files: files, Types: tpkg, Info: info}, nil
}

// ScratchFuncs returns the module-wide index of //dpbyz:scratch-annotated
// functions, keyed by types.Func.FullName.
func (m *Module) ScratchFuncs() map[string]bool {
	m.buildScratchIndex()
	return m.scratchFuncs
}

// CarrierTypes returns the module-wide index of //dpbyz:scratch-annotated
// named types, keyed by "pkgpath.Name".
func (m *Module) CarrierTypes() map[string]bool {
	m.buildScratchIndex()
	return m.carrierTypes
}

func (m *Module) buildScratchIndex() {
	if m.scratchFuncs != nil {
		return
	}
	m.scratchFuncs = map[string]bool{}
	m.carrierTypes = map[string]bool{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !hasDirective(d.Doc, directiveScratch) {
						continue
					}
					if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						m.scratchFuncs[obj.FullName()] = true
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if hasDirective(ts.Doc, directiveScratch) || hasDirective(ts.Comment, directiveScratch) ||
							(len(d.Specs) == 1 && hasDirective(d.Doc, directiveScratch)) {
							m.carrierTypes[pkg.Types.Path()+"."+ts.Name.Name] = true
						}
					}
				}
			}
		}
	}
}
