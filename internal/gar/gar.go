// Package gar implements the gradient aggregation rules (GARs) studied by
// the paper: the non-robust average baseline and the seven statistically
// robust, (α, f)-Byzantine-resilient rules of Table 1 — Krum, Multi-Krum,
// coordinate-wise Median, Trimmed Mean, Phocas, Meamed, Bulyan and MDA —
// together with their VN-ratio constants k_F(n, f) and the Table-1
// necessary-condition calculators (see vnratio.go).
//
// Every rule is constructed for a fixed system size n and Byzantine bound f
// and validates the rule-specific relationship between the two (for example
// Krum needs n > 2f + 2, Bulyan needs n ≥ 4f + 3). Aggregate is a pure
// function and safe for concurrent use.
//
//dpbyz:deterministic
package gar

import (
	"errors"
	"fmt"
	"math"

	"dpbyz/internal/vecmath"
)

// GAR is a deterministic gradient aggregation rule F: R^{d×n} → R^d.
type GAR interface {
	// Name identifies the rule (lower-case, stable; used by the registry).
	Name() string
	// N returns the expected number of input gradients.
	N() int
	// F returns the Byzantine tolerance the rule was constructed for.
	F() int
	// KF returns the VN-ratio bound k_F(n, f) of Eq. 2, or 0 when the rule
	// offers no Byzantine resilience (the average).
	KF() float64
	// Aggregate combines exactly N() gradients of equal dimension into one
	// aggregate gradient. It never mutates its inputs.
	Aggregate(grads [][]float64) ([]float64, error)
}

// IntoAggregator is the allocation-free aggregation fast path: AggregateInto
// writes the aggregate of grads into dst (length = gradient dimension)
// without allocating gradient-sized scratch on the steady state — all
// working memory comes from a sync.Pool shared across calls, and on the
// sequential (sub-grain) path no allocation happens at all; when the
// kernels fan out across cores, the goroutine dispatch itself costs a
// handful of small allocations. dst must not alias any row of grads:
// several rules write intermediate iterates into dst while still reading
// the inputs. Every built-in rule implements it; Aggregate is a thin
// allocating wrapper over it.
type IntoAggregator interface {
	AggregateInto(dst []float64, grads [][]float64) error
}

// AggregateInto aggregates grads into dst using g's allocation-free path
// when it has one, falling back to Aggregate plus a copy otherwise. Training
// loops that reuse dst across steps aggregate without per-step allocations.
func AggregateInto(g GAR, dst []float64, grads [][]float64) error {
	if ia, ok := g.(IntoAggregator); ok {
		return ia.AggregateInto(dst, grads)
	}
	out, err := g.Aggregate(grads)
	if err != nil {
		return err
	}
	if len(out) != len(dst) {
		return fmt.Errorf("gar: destination has dim %d, want %d: %w",
			len(dst), len(out), vecmath.ErrDimensionMismatch)
	}
	copy(dst, out)
	return nil
}

// aggregateAlloc adapts an AggregateInto implementation to the allocating
// Aggregate signature.
func aggregateAlloc(ia IntoAggregator, grads [][]float64) ([]float64, error) {
	var d int
	if len(grads) > 0 {
		d = len(grads[0])
	}
	out := make([]float64, d)
	if err := ia.AggregateInto(out, grads); err != nil {
		return nil, err
	}
	return out, nil
}

// Validation errors, matchable with errors.Is.
var (
	ErrBadWorkerCount    = errors.New("gar: invalid worker count")
	ErrBadByzantineCount = errors.New("gar: invalid Byzantine count")
	ErrWrongInputCount   = errors.New("gar: wrong number of gradients")
	ErrEmptyGradient     = errors.New("gar: empty gradient")
)

// checkInputs validates a gradient matrix against the expected count.
func checkInputs(grads [][]float64, n int) error {
	if len(grads) != n {
		return fmt.Errorf("%w: got %d, want %d", ErrWrongInputCount, len(grads), n)
	}
	if len(grads[0]) == 0 {
		return ErrEmptyGradient
	}
	d := len(grads[0])
	for i, g := range grads {
		if len(g) != d {
			return fmt.Errorf("gar: gradient %d has dim %d, want %d: %w",
				i, len(g), d, vecmath.ErrDimensionMismatch)
		}
	}
	return nil
}

// checkAggInto validates a gradient matrix and a destination buffer for an
// AggregateInto call.
func checkAggInto(dst []float64, grads [][]float64, n int) error {
	if err := checkInputs(grads, n); err != nil {
		return err
	}
	if len(dst) != len(grads[0]) {
		return fmt.Errorf("gar: destination has dim %d, want %d: %w",
			len(dst), len(grads[0]), vecmath.ErrDimensionMismatch)
	}
	return nil
}

// checkNF validates the universal constraints 0 <= f and n >= 1.
func checkNF(n, f int) error {
	if n < 1 {
		return fmt.Errorf("%w: n = %d", ErrBadWorkerCount, n)
	}
	if f < 0 || f >= n {
		return fmt.Errorf("%w: f = %d with n = %d", ErrBadByzantineCount, f, n)
	}
	return nil
}

// Average is the non-robust baseline F = (1/n)·Σ g_i used by the paper's
// trusted-server scenario (Eq. 1). It tolerates zero Byzantine workers.
type Average struct {
	n int
}

var (
	_ GAR            = (*Average)(nil)
	_ IntoAggregator = (*Average)(nil)
)

// NewAverage returns the averaging rule over n workers.
func NewAverage(n int) (*Average, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n = %d", ErrBadWorkerCount, n)
	}
	return &Average{n: n}, nil
}

// Name implements GAR.
func (a *Average) Name() string { return "average" }

// N implements GAR.
func (a *Average) N() int { return a.n }

// F implements GAR: averaging tolerates no Byzantine workers.
func (a *Average) F() int { return 0 }

// KF implements GAR: no resilience bound.
func (a *Average) KF() float64 { return 0 }

// Aggregate implements GAR.
func (a *Average) Aggregate(grads [][]float64) ([]float64, error) {
	return aggregateAlloc(a, grads)
}

// AggregateInto implements IntoAggregator.
//
//dpbyz:hotpath
func (a *Average) AggregateInto(dst []float64, grads [][]float64) error {
	if err := checkAggInto(dst, grads, a.n); err != nil {
		return err
	}
	return vecmath.MeanInto(dst, grads)
}

// Median is the coordinate-wise median rule of Yin et al. (2018); the paper
// lists k_F(n, f) = 1/√(n − f) under the assumption 2f ≤ n − 1.
type Median struct {
	n, f int
}

var (
	_ GAR            = (*Median)(nil)
	_ IntoAggregator = (*Median)(nil)
)

// NewMedian returns the coordinate-wise median rule.
func NewMedian(n, f int) (*Median, error) {
	if err := checkNF(n, f); err != nil {
		return nil, err
	}
	if 2*f > n-1 {
		return nil, fmt.Errorf("%w: median needs 2f <= n-1 (n=%d, f=%d)",
			ErrBadByzantineCount, n, f)
	}
	return &Median{n: n, f: f}, nil
}

// Name implements GAR.
func (m *Median) Name() string { return "median" }

// N implements GAR.
func (m *Median) N() int { return m.n }

// F implements GAR.
func (m *Median) F() int { return m.f }

// KF implements GAR: 1/√(n − f) (paper, proof of Prop. 2).
func (m *Median) KF() float64 { return 1 / math.Sqrt(float64(m.n-m.f)) }

// Aggregate implements GAR.
func (m *Median) Aggregate(grads [][]float64) ([]float64, error) {
	return aggregateAlloc(m, grads)
}

// AggregateInto implements IntoAggregator.
//
//dpbyz:hotpath
func (m *Median) AggregateInto(dst []float64, grads [][]float64) error {
	if err := checkAggInto(dst, grads, m.n); err != nil {
		return err
	}
	return vecmath.CoordMedianInto(dst, grads)
}

// TrimmedMean is the coordinate-wise f-trimmed mean of Yin et al. (2018);
// k_F(n, f) = √((n − 2f)² / (2(f+1)(n − f))) (paper, proof of Prop. 3).
type TrimmedMean struct {
	n, f int
}

var (
	_ GAR            = (*TrimmedMean)(nil)
	_ IntoAggregator = (*TrimmedMean)(nil)
)

// NewTrimmedMean returns the f-trimmed coordinate-wise mean.
func NewTrimmedMean(n, f int) (*TrimmedMean, error) {
	if err := checkNF(n, f); err != nil {
		return nil, err
	}
	if 2*f >= n {
		return nil, fmt.Errorf("%w: trimmed mean needs 2f < n (n=%d, f=%d)",
			ErrBadByzantineCount, n, f)
	}
	return &TrimmedMean{n: n, f: f}, nil
}

// Name implements GAR.
func (t *TrimmedMean) Name() string { return "trimmedmean" }

// N implements GAR.
func (t *TrimmedMean) N() int { return t.n }

// F implements GAR.
func (t *TrimmedMean) F() int { return t.f }

// KF implements GAR.
func (t *TrimmedMean) KF() float64 {
	n, f := float64(t.n), float64(t.f)
	return math.Sqrt((n - 2*f) * (n - 2*f) / (2 * (f + 1) * (n - f)))
}

// Aggregate implements GAR.
func (t *TrimmedMean) Aggregate(grads [][]float64) ([]float64, error) {
	return aggregateAlloc(t, grads)
}

// AggregateInto implements IntoAggregator.
//
//dpbyz:hotpath
func (t *TrimmedMean) AggregateInto(dst []float64, grads [][]float64) error {
	if err := checkAggInto(dst, grads, t.n); err != nil {
		return err
	}
	return vecmath.TrimmedCoordMeanInto(dst, grads, t.f)
}

// Meamed is the mean-around-median rule of Xie et al. (2018): per
// coordinate, the average of the n − f values closest to the median;
// k_F(n, f) = 1/√(10(n − f)) (paper, proof of Prop. 2).
type Meamed struct {
	n, f int
}

var (
	_ GAR            = (*Meamed)(nil)
	_ IntoAggregator = (*Meamed)(nil)
)

// NewMeamed returns the mean-around-median rule.
func NewMeamed(n, f int) (*Meamed, error) {
	if err := checkNF(n, f); err != nil {
		return nil, err
	}
	if 2*f > n-1 {
		return nil, fmt.Errorf("%w: meamed needs 2f <= n-1 (n=%d, f=%d)",
			ErrBadByzantineCount, n, f)
	}
	return &Meamed{n: n, f: f}, nil
}

// Name implements GAR.
func (m *Meamed) Name() string { return "meamed" }

// N implements GAR.
func (m *Meamed) N() int { return m.n }

// F implements GAR.
func (m *Meamed) F() int { return m.f }

// KF implements GAR.
func (m *Meamed) KF() float64 { return 1 / math.Sqrt(10*float64(m.n-m.f)) }

// Aggregate implements GAR.
func (m *Meamed) Aggregate(grads [][]float64) ([]float64, error) {
	return aggregateAlloc(m, grads)
}

// AggregateInto implements IntoAggregator.
//
//dpbyz:hotpath
func (m *Meamed) AggregateInto(dst []float64, grads [][]float64) error {
	if err := checkAggInto(dst, grads, m.n); err != nil {
		return err
	}
	return vecmath.MeanAroundMedianInto(dst, grads, m.n-m.f)
}

// Phocas is the rule of Xie et al. (2018): per coordinate, the average of
// the n − f values closest to the f-trimmed mean. The paper reports
// k_F(n, f) = √(4 + (n − 2f)²/(12(f+1)(n − f)))⁻¹-style constants via its
// Prop. 3 derivation; we expose the constant exactly as the appendix states
// it (see KF).
type Phocas struct {
	n, f int
}

var (
	_ GAR            = (*Phocas)(nil)
	_ IntoAggregator = (*Phocas)(nil)
)

// NewPhocas returns the Phocas rule.
func NewPhocas(n, f int) (*Phocas, error) {
	if err := checkNF(n, f); err != nil {
		return nil, err
	}
	if 2*f >= n {
		return nil, fmt.Errorf("%w: phocas needs 2f < n (n=%d, f=%d)",
			ErrBadByzantineCount, n, f)
	}
	return &Phocas{n: n, f: f}, nil
}

// Name implements GAR.
func (p *Phocas) Name() string { return "phocas" }

// N implements GAR.
func (p *Phocas) N() int { return p.n }

// F implements GAR.
func (p *Phocas) F() int { return p.f }

// KF implements GAR: the appendix of the paper uses
// k_F(n, f) = √(4 + (n − 2f)²/(12(f+1)(n − f))) in the Prop. 3 proof.
func (p *Phocas) KF() float64 {
	n, f := float64(p.n), float64(p.f)
	return math.Sqrt(4 + (n-2*f)*(n-2*f)/(12*(f+1)*(n-f)))
}

// Aggregate implements GAR.
func (p *Phocas) Aggregate(grads [][]float64) ([]float64, error) {
	return aggregateAlloc(p, grads)
}

// phocasVal is one coordinate's candidate in the Phocas selection.
type phocasVal struct {
	val  float64
	dist float64
}

// AggregateInto implements IntoAggregator.
//
//dpbyz:hotpath
func (p *Phocas) AggregateInto(dst []float64, grads [][]float64) error {
	if err := checkAggInto(dst, grads, p.n); err != nil {
		return err
	}
	s := getScratch()
	defer putScratch(s)
	trimmed := grow(&s.vecA, len(dst))
	if err := vecmath.TrimmedCoordMeanInto(trimmed, grads, p.f); err != nil {
		return err
	}
	// Per coordinate, average the n-f values nearest the trimmed mean.
	d := len(dst)
	if w := vecmath.ChunkWorkers(d); w > 1 {
		// Above-grain dimensions fan out across cores; the closure spawn is
		// the documented fixed goroutine-dispatch cost (see IntoAggregator).
		//dpbyz:allowalloc
		vecmath.RunChunked(d, w, func(lo, hi int) {
			ws := getScratch()
			p.phocasRange(dst, trimmed, grads, grow(&ws.scored, p.n), lo, hi)
			putScratch(ws)
		})
		return nil
	}
	p.phocasRange(dst, trimmed, grads, grow(&s.scored, p.n), 0, d)
	return nil
}

// phocasRange runs the Phocas per-coordinate selection over [lo, hi) using
// the provided n-sized column.
//
//dpbyz:hotpath
func (p *Phocas) phocasRange(dst, trimmed []float64, grads [][]float64, col []phocasVal, lo, hi int) {
	keep := p.n - p.f
	for j := lo; j < hi; j++ {
		for i, g := range grads {
			col[i] = phocasVal{val: g[j], dist: math.Abs(g[j] - trimmed[j])}
		}
		// Selection by partial sort: keep values with the smallest dist.
		// n is small (tens), so insertion-style selection is fine.
		for a := 0; a < keep; a++ {
			best := a
			for b := a + 1; b < p.n; b++ {
				if col[b].dist < col[best].dist {
					best = b
				}
			}
			col[a], col[best] = col[best], col[a]
		}
		var s float64
		for _, c := range col[:keep] {
			s += c.val
		}
		dst[j] = s / float64(keep)
	}
}
