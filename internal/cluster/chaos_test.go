package cluster

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"dpbyz/internal/attack"
	"dpbyz/internal/data"
	"dpbyz/internal/gar"
	"dpbyz/internal/membership"
	"dpbyz/internal/metrics"
	"dpbyz/internal/model"
	"dpbyz/internal/vecmath"
)

// TestClusterChaos64Workers is the adversarial-network scale test: 64
// in-process workers with a mix of Byzantine attackers, crashers,
// stragglers, a wrong-dimension peer, and honest workers behind lossy,
// duplicating, reordering, delaying links — the §2.1 channel model the
// TCP tests could never exercise. The honest majority must still learn,
// every stale/duplicate/bad-dimension submission must be discarded, and
// the missed-gradient accounting must balance exactly.
func TestClusterChaos64Workers(t *testing.T) {
	const (
		n         = 64
		f         = 8 // Byzantine workers (ids 0..7)
		steps     = 25
		crashers  = 6  // ids 8..13, die after 3 rounds
		straggler = 6  // ids 14..19, always past the round deadline
		faulty    = 10 // ids 20..29, honest over chaotic links
		// id 30 submits wrong-dimension gradients; 31..63 honest and clean.
	)
	tr := NewChanTransport()
	ds := testDataset(t)
	m := testModel(t)

	smallModel, err := model.NewLogisticMSE(4)
	if err != nil {
		t.Fatal(err)
	}
	smallDS, err := data.SyntheticPhishing(data.SyntheticPhishingConfig{N: 100, Features: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	srvCfg := ServerConfig{
		Addr:         "chaos",
		Transport:    tr,
		GAR:          mustGAR(t, "trimmedmean", n, f),
		Dim:          m.Dim(),
		Steps:        steps,
		LearningRate: 2,
		Momentum:     0.9,
		RoundTimeout: 250 * time.Millisecond,
	}
	workers := make([]WorkerConfig, n)
	for i := range workers {
		workers[i] = WorkerConfig{
			Transport: tr,
			WorkerID:  i,
			Model:     m,
			Train:     ds,
			BatchSize: 20,
			ClipNorm:  0.01,
			Seed:      uint64(i + 1),
		}
		switch {
		case i < f:
			workers[i].Attack = attack.NewSignFlip()
		case i < f+crashers:
			workers[i].MaxRounds = 3
		case i < f+crashers+straggler:
			workers[i].RoundDelay = 600 * time.Millisecond
		case i < f+crashers+straggler+faulty:
			// SkipFirst 1 keeps the hello (and the first broadcast) reliable:
			// connection setup succeeds, every round after runs over a lossy,
			// duplicating, reordering, jittering link in both directions.
			workers[i].Transport = tr.WithFaults(
				FaultConfig{Seed: uint64(100 + i), SkipFirst: 1, DropProb: 0.15, DupProb: 0.2, ReorderProb: 0.2, Delay: 5 * time.Millisecond, DelayJitter: 20 * time.Millisecond},
				FaultConfig{Seed: uint64(200 + i), SkipFirst: 1, DropProb: 0.15, DupProb: 0.2, ReorderProb: 0.2, Delay: 5 * time.Millisecond, DelayJitter: 20 * time.Millisecond},
			)
		case i == f+crashers+straggler+faulty:
			workers[i].Model = smallModel
			workers[i].Train = smallDS
		}
	}

	srvRes, workerRes, workerErrs := launch(t, srvCfg, workers)

	if got := srvRes.History.Len(); got != steps {
		t.Errorf("server finished %d rounds, want %d", got, steps)
	}
	// The honest majority must have learned despite the chaos.
	loss := model.DatasetLoss(m, srvRes.Params, ds)
	if loss >= 0.25 {
		t.Errorf("final dataset loss %v did not improve on the 0.25 start", loss)
	}
	// Accounting must balance exactly: every (worker, round) slot was either
	// aggregated or replaced by the zero vector — nothing double-counted,
	// nothing lost, no matter what the channels did.
	if got, want := srvRes.AcceptedGradients+srvRes.MissedGradients, n*steps; got != want {
		t.Errorf("accepted %d + missed %d = %d, want exactly %d",
			srvRes.AcceptedGradients, srvRes.MissedGradients, got, want)
	}
	// Deterministic lower bounds: each crasher misses steps-3 rounds, the
	// stragglers and the wrong-dimension worker miss every round.
	if minMissed := crashers*(steps-3) + straggler*steps + steps; srvRes.MissedGradients < minMissed {
		t.Errorf("missed gradients = %d, want >= %d", srvRes.MissedGradients, minMissed)
	}
	// Stragglers alone guarantee stale discards; the wrong-dimension worker
	// guarantees bad-dimension discards.
	if srvRes.DiscardedSubmissions == 0 {
		t.Error("no submissions discarded under a duplicating/reordering network")
	}
	// Clean honest workers must finish every round with the final model and
	// no error.
	for i := f + crashers + straggler + faulty + 1; i < n; i++ {
		if workerErrs[i] != nil {
			t.Errorf("clean worker %d: %v", i, workerErrs[i])
			continue
		}
		if workerRes[i].Rounds != steps {
			t.Errorf("clean worker %d rounds = %d, want %d", i, workerRes[i].Rounds, steps)
		}
		if !vecmath.ApproxEqual(workerRes[i].FinalParams, srvRes.Params, 0) {
			t.Errorf("clean worker %d final params differ from server", i)
		}
	}
	// Crashers really crashed.
	for i := f; i < f+crashers; i++ {
		if workerRes[i] != nil && workerRes[i].Rounds != 3 {
			t.Errorf("crasher %d rounds = %d, want 3", i, workerRes[i].Rounds)
		}
	}
}

// TestClusterChaos512Quorum scales the chaos test to 512 workers in
// bounded-staleness quorum mode: the server fires every round at
// n − f − stragglers submissions instead of waiting out the timeout, so a
// permanently slow 6% of the fleet cannot pace the run. The quorum cut must
// be exact — every round commits with precisely Quorum slots filled — and
// the accounting must balance to the last (worker, round) pair.
func TestClusterChaos512Quorum(t *testing.T) {
	if testing.Short() {
		t.Skip("512-worker run needs full rounds")
	}
	const (
		n         = 512
		f         = 16 // Byzantine workers (ids 0..15)
		crashers  = 16 // ids 16..31, die after 3 rounds
		straggler = 32 // ids 32..63, always far past the quorum cut
		steps     = 5
		quorum    = n - f - straggler // 464
		delay     = 1200 * time.Millisecond
	)
	tr := NewChanTransport()
	ds := testDataset(t)
	m := testModel(t)

	srv, err := NewServer(ServerConfig{
		Addr:         "chaos512",
		Transport:    tr,
		GAR:          mustGAR(t, "trimmedmean", n, f),
		Dim:          m.Dim(),
		Steps:        steps,
		LearningRate: 2,
		Momentum:     0.9,
		RoundTimeout: 10 * time.Second,
		Quorum:       quorum,
		LateCredit:   true,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := testContext(t)
	defer cancel()
	workerCtx, stopWorkers := testWorkerContext(ctx)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := WorkerConfig{
			Addr:      "chaos512",
			Transport: tr,
			WorkerID:  i,
			Model:     m,
			Train:     ds,
			BatchSize: 20,
			ClipNorm:  0.01,
			Seed:      uint64(i + 1),
		}
		switch {
		case i < f:
			cfg.Attack = attack.NewSignFlip()
		case i < f+crashers:
			cfg.MaxRounds = 3
		case i < f+crashers+straggler:
			cfg.RoundDelay = delay
		}
		wg.Add(1)
		go func(cfg WorkerConfig) {
			defer wg.Done()
			_, _ = RunWorker(workerCtx, cfg)
		}(cfg)
	}

	start := time.Now()
	srvRes, srvErr := srv.Run(ctx)
	elapsed := time.Since(start)
	stopWorkers() // release stragglers sleeping out their RoundDelay
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server: %v", srvErr)
	}
	if got := srvRes.History.Len(); got != steps {
		t.Errorf("server finished %d rounds, want %d", got, steps)
	}
	// Pacing: waiting on the stragglers would cost >= steps×delay = 6s; the
	// quorum cut must finish well before that.
	if limit := 5 * time.Second; elapsed >= limit {
		t.Errorf("quorum run took %v, want < %v (server paced by stragglers)", elapsed, limit)
	}
	// The accounting balances exactly, and the quorum cut is exact: every
	// round commits with precisely quorum filled slots, so the remaining
	// n − quorum slots are zero-padded misses. Crashing honest workers only
	// shift who fills the quorum (rounds 3+ have exactly quorum live fast
	// workers), never how many.
	if got, want := srvRes.AcceptedGradients+srvRes.MissedGradients, n*steps; got != want {
		t.Errorf("accepted %d + missed %d = %d, want exactly %d",
			srvRes.AcceptedGradients, srvRes.MissedGradients, got, want)
	}
	if want := (n - quorum) * steps; srvRes.MissedGradients != want {
		t.Errorf("missed gradients = %d, want exactly %d", srvRes.MissedGradients, want)
	}
	if srvRes.CreditedGradients > srvRes.AcceptedGradients {
		t.Errorf("credited %d exceeds accepted %d",
			srvRes.CreditedGradients, srvRes.AcceptedGradients)
	}
	if !vecmath.AllFinite(srvRes.Params) {
		t.Error("final params not finite")
	}
}

// TestClusterChaosChurn is the 64-worker chaos test under epoched
// membership: on top of Byzantine attackers and lossy links, the fleet now
// churns — workers crash for good, workers kill their own connections and
// rejoin, a dead worker is restarted epochs later under the same id, and a
// fresh worker joins mid-run. The server must re-derive f and the view at
// every boundary, and no matter how the population moved, the per-epoch
// ledger Accepted_e + Missed_e == n_e × rounds_e must balance to the last
// (worker, round) pair.
func TestClusterChaosChurn(t *testing.T) {
	const (
		maxN        = 64
		atk         = 8  // ids 0..7: sign-flip Byzantine
		crashers    = 4  // ids 8..11: die after 4 rounds, never return
		droppers    = 4  // ids 12..15: kill their own conn mid-run, rejoin
		restarterID = 16 // crashes, restarted fresh once the gate opens
		faulty      = 8  // ids 17..24: honest over lossy/duplicating links
		// ids 25..62 honest and clean; id 63 joins only mid-run.
		lateID      = 63
		steps       = 18
		epochRounds = 3
		fratio      = 0.15
	)
	tr := NewChanTransport()
	ds := testDataset(t)
	m := testModel(t)

	restartGate := make(chan struct{})
	lateGate := make(chan struct{})
	srvCfg := ServerConfig{
		Addr:      "churn",
		Transport: tr,
		Membership: &MembershipConfig{
			MinWorkers:  40,
			MaxWorkers:  maxN,
			FRatio:      fratio,
			EpochRounds: epochRounds,
			NewGAR: func(n, f int) (gar.GAR, error) {
				return gar.New("trimmedmean", n, f)
			},
		},
		Dim:          m.Dim(),
		Steps:        steps,
		LearningRate: 2,
		Momentum:     0.9,
		RoundTimeout: 300 * time.Millisecond,
		StepHook: func(rec metrics.StepRecord, w []float64) error {
			switch rec.Step {
			case 2:
				close(lateGate)
			case 8:
				close(restartGate)
			}
			return nil
		},
	}
	srv, err := NewServer(srvCfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := testContext(t)
	defer cancel()
	baseWorker := func(id int) WorkerConfig {
		return WorkerConfig{
			Addr:       "churn",
			Transport:  tr,
			WorkerID:   id,
			Model:      m,
			Train:      ds,
			BatchSize:  20,
			ClipNorm:   0.01,
			Seed:       uint64(id + 1),
			Membership: true,
		}
	}

	var wg sync.WaitGroup
	results := make([]*WorkerResult, maxN)
	workerErrs := make([]error, maxN)
	start := func(id int, cfg WorkerConfig, gate chan struct{}) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if gate != nil {
				select {
				case <-gate:
				case <-ctx.Done():
					workerErrs[id] = ctx.Err()
					return
				}
			}
			results[id], workerErrs[id] = RunWorker(ctx, cfg)
		}()
	}
	for id := 0; id < maxN; id++ {
		cfg := baseWorker(id)
		switch {
		case id < atk:
			cfg.Attack = attack.NewSignFlip()
		case id < atk+crashers:
			cfg.MaxRounds = 4
		case id < atk+crashers+droppers:
			cfg.DropConnAfter = 4
		case id == restarterID:
			cfg.MaxRounds = 3
		case id < restarterID+1+faulty:
			cfg.Transport = tr.WithFaults(
				FaultConfig{Seed: uint64(100 + id), SkipFirst: 1, DropProb: 0.1, DupProb: 0.15, ReorderProb: 0.15, Delay: 2 * time.Millisecond, DelayJitter: 10 * time.Millisecond},
				FaultConfig{Seed: uint64(200 + id), SkipFirst: 1, DropProb: 0.1, DupProb: 0.15, ReorderProb: 0.15, Delay: 2 * time.Millisecond, DelayJitter: 10 * time.Millisecond},
			)
		}
		switch id {
		case restarterID:
			// First life: crash after 3 rounds. Second life: a fresh process
			// under the same id, launched two-plus epochs later.
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := RunWorker(ctx, cfg); err != nil {
					workerErrs[restarterID] = fmt.Errorf("crash phase: %w", err)
					return
				}
				select {
				case <-restartGate:
				case <-ctx.Done():
					workerErrs[restarterID] = ctx.Err()
					return
				}
				results[restarterID], workerErrs[restarterID] = RunWorker(ctx, baseWorker(restarterID))
			}()
		case lateID:
			start(id, cfg, lateGate)
		default:
			start(id, cfg, nil)
		}
	}

	srvRes, srvErr := srv.Run(ctx)
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server: %v", srvErr)
	}
	if got := srvRes.History.Len(); got != steps {
		t.Errorf("server finished %d rounds, want %d", got, steps)
	}
	// The honest majority must still learn through the churn.
	loss := model.DatasetLoss(m, srvRes.Params, ds)
	if loss >= 0.25 {
		t.Errorf("final dataset loss %v did not improve on the 0.25 start", loss)
	}
	// Exact per-epoch accounting: every epoch's ledger balances against its
	// realized view, and the epochs tile the run.
	if err := membership.BalanceEpochs(srvRes.Epochs); err != nil {
		t.Errorf("epoch books: %v", err)
	}
	totalRounds, totalSlots := 0, 0
	for _, st := range srvRes.Epochs {
		totalRounds += st.Rounds
		totalSlots += st.N * st.Rounds
		// f is re-derived from the live population every epoch.
		if want := int(fratio*float64(st.N) + 1e-9); st.F != want {
			t.Errorf("epoch %d: f = %d for n = %d, want %d", st.Epoch, st.F, st.N, want)
		}
	}
	if totalRounds != steps {
		t.Errorf("epoch rounds sum to %d, want %d", totalRounds, steps)
	}
	if got := srvRes.AcceptedGradients + srvRes.MissedGradients; got != totalSlots {
		t.Errorf("accepted %d + missed %d = %d, want exactly %d (Σ n_e × rounds_e)",
			srvRes.AcceptedGradients, srvRes.MissedGradients, got, totalSlots)
	}
	// Churn is visible in the books: crashers really die...
	for id := atk; id < atk+crashers; id++ {
		if workerErrs[id] != nil {
			t.Errorf("crasher %d: %v", id, workerErrs[id])
		} else if results[id].Rounds != 4 {
			t.Errorf("crasher %d rounds = %d, want 4", id, results[id].Rounds)
		}
	}
	last := srvRes.Epochs[len(srvRes.Epochs)-1]
	for id := atk; id < atk+crashers; id++ {
		if viewOf(last).Contains(id) {
			t.Errorf("crashed worker %d still in the final view", id)
		}
	}
	// ...droppers rejoin and keep their stream position exact...
	for id := atk + crashers; id < atk+crashers+droppers; id++ {
		if workerErrs[id] != nil {
			t.Errorf("dropper %d: %v", id, workerErrs[id])
			continue
		}
		r := results[id]
		if r.Rejoins < 1 {
			t.Errorf("dropper %d rejoins = %d, want >= 1", id, r.Rejoins)
		}
		if r.Rounds+r.FastForwarded != steps {
			t.Errorf("dropper %d rounds %d + fast-forwarded %d != %d",
				id, r.Rounds, r.FastForwarded, steps)
		}
		if !vecmath.ApproxEqual(r.FinalParams, srvRes.Params, 0) {
			t.Errorf("dropper %d final params differ from server", id)
		}
	}
	// ...the restarted worker comes back under its old id...
	if workerErrs[restarterID] != nil {
		t.Errorf("restarter: %v", workerErrs[restarterID])
	} else {
		r := results[restarterID]
		if r.FastForwarded == 0 || r.Rounds+r.FastForwarded != steps {
			t.Errorf("restarter rounds %d + fast-forwarded %d != %d",
				r.Rounds, r.FastForwarded, steps)
		}
		if !viewOf(last).Contains(restarterID) {
			t.Errorf("restarted worker %d missing from the final view", restarterID)
		}
	}
	// ...and the late joiner is admitted at a boundary and catches up.
	if workerErrs[lateID] != nil {
		t.Errorf("late joiner: %v", workerErrs[lateID])
	} else {
		r := results[lateID]
		if r.FastForwarded < epochRounds || r.Rounds+r.FastForwarded != steps {
			t.Errorf("late joiner rounds %d + fast-forwarded %d, want sum %d with >= %d replayed",
				r.Rounds, r.FastForwarded, steps, epochRounds)
		}
		if !viewOf(last).Contains(lateID) {
			t.Errorf("late joiner %d missing from the final view", lateID)
		}
	}
	// Clean honest workers ride through every epoch untouched.
	for id := restarterID + 1 + faulty; id < lateID; id++ {
		if workerErrs[id] != nil {
			t.Errorf("clean worker %d: %v", id, workerErrs[id])
			continue
		}
		r := results[id]
		if r.Rounds+r.FastForwarded != steps {
			t.Errorf("clean worker %d rounds %d + fast-forwarded %d != %d",
				id, r.Rounds, r.FastForwarded, steps)
		}
		if !vecmath.ApproxEqual(r.FinalParams, srvRes.Params, 0) {
			t.Errorf("clean worker %d final params differ from server", id)
		}
	}
}

// testContext bounds a chaos run; testWorkerContext derives the worker
// context the test cancels once the server is done.
func testContext(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 120*time.Second)
}

func testWorkerContext(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// TestClusterSteadyStateAllocationGate pins the zero-alloc discipline end
// to end: once a run is warm, one additional training round (server round
// loop + reader goroutines + n worker loops over the in-process transport)
// must allocate far less than one gradient-sized slice. Gob framing used
// to cost ~2·n·d float64s per round; the binary codec plus buffer reuse
// must stay under d floats total.
func TestClusterSteadyStateAllocationGate(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs full runs")
	}
	const (
		n           = 8
		dim         = 4097 // weights dim for 4096 features
		short, long = 4, 24
	)
	// Force the sequential (fully allocation-free) aggregation path so the
	// measurement isn't clouded by the parallel engine's dispatch.
	vecmath.SetParallelism(1)
	defer vecmath.SetParallelism(0)

	ds, err := data.SyntheticPhishing(data.SyntheticPhishingConfig{N: 200, Features: dim - 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticMSE(dim - 1)
	if err != nil {
		t.Fatal(err)
	}

	run := func(steps int) {
		tr := NewChanTransport()
		srvCfg := ServerConfig{
			Addr:         "alloc",
			Transport:    tr,
			GAR:          mustGAR(t, "average", n, 0),
			Dim:          m.Dim(),
			Steps:        steps,
			LearningRate: 0.1,
			RoundTimeout: 10 * time.Second,
		}
		workers := make([]WorkerConfig, n)
		for i := range workers {
			workers[i] = WorkerConfig{
				Transport: tr,
				WorkerID:  i,
				Model:     m,
				Train:     ds,
				BatchSize: 10,
				ClipNorm:  0.01,
				Seed:      uint64(i + 1),
			}
		}
		srvRes, _, workerErrs := launch(t, srvCfg, workers)
		for i, werr := range workerErrs {
			if werr != nil {
				t.Fatalf("worker %d: %v", i, werr)
			}
		}
		if srvRes.MissedGradients != 0 {
			t.Fatalf("missed gradients = %d on a reliable transport", srvRes.MissedGradients)
		}
	}

	run(2) // warm the scratch pools
	var before, mid, after runtime.MemStats
	runtime.ReadMemStats(&before)
	run(short)
	runtime.ReadMemStats(&mid)
	run(long)
	runtime.ReadMemStats(&after)

	shortAlloc := mid.TotalAlloc - before.TotalAlloc
	longAlloc := after.TotalAlloc - mid.TotalAlloc
	if longAlloc < shortAlloc {
		// Scratch reuse can make the longer run cheaper in absolute terms;
		// then the marginal per-round cost is certainly fine.
		return
	}
	perRound := float64(longAlloc-shortAlloc) / float64(long-short)
	limit := float64(dim * 8 / 2) // half of one gradient-sized slice
	t.Logf("marginal allocation per round: %.0f bytes (limit %.0f)", perRound, limit)
	if perRound > limit {
		t.Errorf("steady-state round allocates %.0f bytes, want < %.0f (no gradient-sized slices)",
			perRound, limit)
	}
}

// TestFinalParamsDoesNotAliasRecycledScratch is the regression test for
// the WorkerResult.FinalParams aliasing bug: the worker's last decoded
// Params lives in conn-owned scratch that is recycled to other connections
// on close, so returning it without a copy would let a later connection
// rewrite a result the caller already owns.
func TestFinalParamsDoesNotAliasRecycledScratch(t *testing.T) {
	const n = 2
	tr := NewChanTransport()
	ds := testDataset(t)
	m := testModel(t)
	srvCfg := ServerConfig{
		Addr:         "alias",
		Transport:    tr,
		GAR:          mustGAR(t, "average", n, 0),
		Dim:          m.Dim(),
		Steps:        5,
		LearningRate: 1,
		RoundTimeout: 5 * time.Second,
	}
	workers := make([]WorkerConfig, n)
	for i := range workers {
		workers[i] = WorkerConfig{
			Transport: tr,
			WorkerID:  i,
			Model:     m,
			Train:     ds,
			BatchSize: 10,
			ClipNorm:  0.01,
			Seed:      uint64(i + 1),
		}
	}
	srvRes, workerRes, workerErrs := launch(t, srvCfg, workers)
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	want := append([]float64(nil), srvRes.Params...)
	for i, wr := range workerRes {
		if !vecmath.ApproxEqual(wr.FinalParams, want, 0) {
			t.Fatalf("worker %d final params differ before scratch reuse", i)
		}
	}

	// Poison every buffer the closed connections returned to the scratch
	// pool. If any FinalParams aliased conn scratch, it corrupts now.
	for _, buf := range drainScratchForTest() {
		for i := range buf {
			buf[i] = math.NaN()
		}
	}
	for i, wr := range workerRes {
		if !vecmath.ApproxEqual(wr.FinalParams, want, 0) {
			t.Errorf("worker %d FinalParams aliases recycled decode scratch", i)
		}
	}
}
