package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// SubmissionVersion is the fleet submission-envelope schema version; bump on
// breaking change.
const SubmissionVersion = 1

// RunID identifies one fleet-managed run. An ID names the run's directory in
// the fleet store and appears in every /runs URL, so the alphabet is
// restricted to lowercase letters, digits and dashes.
type RunID string

// FormatRunID renders the fleet's sequential run IDs: zero-padded so the
// store's directory listing sorts in submission order.
func FormatRunID(seq uint64) RunID {
	return RunID(fmt.Sprintf("run-%08d", seq))
}

// Validate rejects IDs that could escape the store directory or break URLs.
func (id RunID) Validate() error {
	if id == "" {
		return errors.New("spec: empty run id")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		case r == '-':
		default:
			return fmt.Errorf("spec: run id %q contains %q (allowed: a-z, 0-9, dash)", id, r)
		}
	}
	return nil
}

// Submission is the fleet control plane's POST /runs envelope: one or more
// Specs — a batch sweep submits its CellSpecs as one array — plus the
// scheduling directives that are the service's business rather than the
// run's (and therefore do not belong on Spec).
type Submission struct {
	// SchemaVersion is the envelope schema version. Zero means "current";
	// any other value must equal SubmissionVersion.
	SchemaVersion int `json:"version,omitempty"`
	// Backend selects where every run of the batch executes: "local" (the
	// default, the in-process simulator) or "cluster" (an in-process
	// distributed cluster over a ChanTransport).
	Backend string `json:"backend,omitempty"`
	// Priority orders this batch against other submissions: among queued
	// runs, higher priorities start first; ties start in submission order.
	Priority int `json:"priority,omitempty"`
	// CheckpointEvery overrides the service's snapshot cadence in steps for
	// this batch (0 keeps the service default).
	CheckpointEvery int `json:"checkpointEvery,omitempty"`
	// Runs holds the batch's run specs, scheduled independently.
	Runs []Spec `json:"runs"`
}

// Submission validation errors, matchable with errors.Is.
var (
	ErrBadSubmissionVersion = errors.New("spec: unsupported submission version")
	ErrEmptySubmission      = errors.New("spec: submission carries no runs")
)

// UnmarshalJSON decodes strictly, mirroring Spec: unknown envelope fields
// fail loudly.
func (sub *Submission) UnmarshalJSON(b []byte) error {
	type plain Submission // drop methods to avoid recursing into this decoder
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var p plain
	if err := dec.Decode(&p); err != nil {
		if bytes.Contains([]byte(err.Error()), []byte("unknown field")) {
			return fmt.Errorf("%w: %v", ErrUnknownField, err)
		}
		return err
	}
	*sub = Submission(p)
	return nil
}

// Validate checks the envelope and every run spec in it.
func (sub *Submission) Validate() error {
	if sub.SchemaVersion != 0 && sub.SchemaVersion != SubmissionVersion {
		return fmt.Errorf("%w: %d (want %d)", ErrBadSubmissionVersion, sub.SchemaVersion, SubmissionVersion)
	}
	switch sub.Backend {
	case "", "local", "cluster":
	default:
		return fmt.Errorf("spec: unknown submission backend %q (local|cluster)", sub.Backend)
	}
	if sub.CheckpointEvery < 0 {
		return fmt.Errorf("spec: negative submission checkpointEvery %d", sub.CheckpointEvery)
	}
	if len(sub.Runs) == 0 {
		return ErrEmptySubmission
	}
	for i := range sub.Runs {
		if err := sub.Runs[i].Validate(); err != nil {
			return fmt.Errorf("spec: submission run %d: %w", i, err)
		}
	}
	return nil
}

// ParseSubmission decodes a POST /runs body in any of its three accepted
// shapes — a Submission envelope, a bare Spec object (one run with default
// scheduling), or a bare array of Specs (a batch sweep of CellSpecs) — and
// validates every run. All three shapes decode strictly.
func ParseSubmission(b []byte) (*Submission, error) {
	trimmed := bytes.TrimLeft(b, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var runs []Spec
		if err := json.Unmarshal(b, &runs); err != nil {
			return nil, err
		}
		sub := &Submission{Runs: runs}
		if err := sub.Validate(); err != nil {
			return nil, err
		}
		return sub, nil
	}
	var sub Submission
	envErr := json.Unmarshal(b, &sub)
	if envErr == nil && len(sub.Runs) > 0 {
		if err := sub.Validate(); err != nil {
			return nil, err
		}
		return &sub, nil
	}
	// Not an envelope (a bare Spec trips the strict decoder's unknown-field
	// check, or decodes to an empty Runs list): try the single-Spec shape.
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		if envErr != nil {
			return nil, fmt.Errorf("spec: body is neither a submission envelope (%v) nor a run spec (%v)", envErr, err)
		}
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Submission{Runs: []Spec{s}}, nil
}
