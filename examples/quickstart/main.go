// Quickstart: train the paper's logistic model in the parameter-server
// model with 11 workers, 5 of them Byzantine running the "A Little Is
// Enough" attack, aggregated with MDA — first without, then with DP noise.
// The run reproduces in miniature the paper's headline observation: each
// defence works alone, but combining them hurts.
//
// Each condition is one serializable dpbyz.Spec — the same object a JSON
// file, the cluster binaries and the experiment grids consume — executed
// here on the in-process LocalBackend.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"dpbyz"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	steps := flag.Int("steps", 300, "SGD steps per condition")
	flag.Parse()

	// The offline stand-in for the paper's phishing dataset: 11 055 points,
	// 68 features, split 8 400 / 2 655 like §5.1 — the Spec's Data defaults.
	base := dpbyz.Spec{
		Steps:          *steps,
		BatchSize:      50,
		LearningRate:   2,
		WorkerMomentum: 0.99, // the paper applies momentum at the workers
		ClipNorm:       0.01,
		Seed:           1,
		AccuracyEvery:  50,
	}

	for _, setting := range []struct {
		label  string
		attack bool
		dp     bool
	}{
		{label: "honest, clear", attack: false, dp: false},
		{label: "ALIE attack, clear", attack: true, dp: false},
		{label: "honest, DP eps=0.2", attack: false, dp: true},
		{label: "ALIE attack + DP eps=0.2", attack: true, dp: true},
	} {
		s := base
		if setting.attack {
			s.GAR = dpbyz.GARSpec{Name: "mda", N: 11, F: 5}
			s.Attack = &dpbyz.AttackSpec{Name: "alie"}
		} else {
			s.GAR = dpbyz.GARSpec{Name: "average", N: 11}
		}
		if setting.dp {
			s.Mechanism = &dpbyz.MechanismSpec{Name: "gaussian", Epsilon: 0.2, Delta: 1e-6}
		}
		res, err := dpbyz.Run(context.Background(), s, dpbyz.WithParallel())
		if err != nil {
			return err
		}
		minLoss, atStep := res.History.MinLoss()
		fmt.Printf("%-26s min-loss=%.5f (step %d)  final-acc=%.4f\n",
			setting.label, minLoss, atStep, res.History.FinalAccuracy())
	}
	return nil
}
