// Command dpbyz-vnratio evaluates the paper's Table 1 necessary conditions
// for a concrete configuration: given (n, f, b, d, ε, δ) it prints each
// rule's k_F(n, f) bound, the analytical threshold from Propositions 1–3,
// and whether the configuration satisfies it.
//
//	dpbyz-vnratio -n 11 -f 5 -batch 50 -dim 69
//	dpbyz-vnratio -n 23 -f 5 -batch 128 -dim 25600000   # ResNet-50 scale
package main

import (
	"flag"
	"fmt"
	"os"

	"dpbyz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dpbyz-vnratio:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 11, "total workers")
		f       = flag.Int("f", 5, "max Byzantine workers")
		batch   = flag.Int("batch", 50, "batch size b")
		dim     = flag.Int("dim", 69, "model size d")
		epsilon = flag.Float64("eps", 0.2, "per-step epsilon")
		delta   = flag.Float64("delta", 1e-6, "per-step delta")
	)
	flag.Parse()

	rows, err := dpbyz.Table1(*n, *f, *batch, *dim, dpbyz.Budget{Epsilon: *epsilon, Delta: *delta})
	if err != nil {
		return err
	}
	fmt.Printf("n=%d f=%d (f/n=%.3f) b=%d d=%d eps=%g delta=%g\n",
		*n, *f, float64(*f)/float64(*n), *batch, *dim, *epsilon, *delta)
	fmt.Printf("%-12s %-14s %12s %16s %10s\n", "rule", "kind", "k_F", "threshold", "satisfied")
	for _, r := range rows {
		fmt.Printf("%-12s %-14s %12.5g %16.6g %10v\n",
			r.Rule, r.Kind, r.KF, r.Threshold, r.Satisfied)
	}
	fmt.Println("\nkind=min-batch: condition requires batch size b >= threshold")
	fmt.Println("kind=max-byz-frac: condition requires f/n <= threshold")
	return nil
}
