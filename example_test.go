package dpbyz_test

import (
	"context"
	"fmt"
	"log"

	"dpbyz"
)

// ExampleRun runs a miniature version of the paper's Fig. 2 "ALIE + DP"
// cell: 7 workers, 2 Byzantine, MDA aggregation, Gaussian DP noise — all
// referenced by name in one serializable Spec, executed on the in-process
// backend.
func ExampleRun() {
	s := dpbyz.Spec{
		Data:           dpbyz.DataSpec{N: 600, Features: 10, TrainN: 450},
		GAR:            dpbyz.GARSpec{Name: "mda", N: 7, F: 2},
		Attack:         &dpbyz.AttackSpec{Name: "alie"},
		Mechanism:      &dpbyz.MechanismSpec{Name: "gaussian", Epsilon: 0.5, Delta: 1e-6},
		Steps:          60,
		BatchSize:      20,
		LearningRate:   2,
		WorkerMomentum: 0.99,
		ClipNorm:       0.01,
		Seed:           1,
	}
	res, err := dpbyz.Run(context.Background(), s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("steps recorded:", res.History.Len())
	// Output: steps recorded: 60
}

// ExampleSpec_json shows the serialized form of a Spec: the same JSON that
// drives cmd/dpbyz-train, cmd/dpbyz-server/-worker and the experiment
// grids, with a version tag and strict unknown-field rejection on decode.
func ExampleSpec_json() {
	s := dpbyz.Spec{
		GAR:          dpbyz.GARSpec{Name: "trimmedmean", N: 5, F: 1},
		Steps:        10,
		BatchSize:    20,
		LearningRate: 2,
		Seed:         1,
	}
	b, err := s.JSON()
	if err != nil {
		log.Fatal(err)
	}
	round, err := dpbyz.ParseSpec(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round-trip gar:", round.GAR.Name)
	_, err = dpbyz.ParseSpec([]byte(`{"version": 1, "gar": {"name": "mda", "n": 5, "f": 1}, "stepz": 10}`))
	fmt.Println("unknown field rejected:", err != nil)
	// Output:
	// round-trip gar: trimmedmean
	// unknown field rejected: true
}

// ExampleTable1 evaluates the paper's Table-1 necessary conditions at
// ResNet-50 scale, where no rule can combine DP with Byzantine resilience.
func ExampleTable1() {
	rows, err := dpbyz.Table1(23, 5, 128, 25_600_000, dpbyz.Budget{Epsilon: 0.2, Delta: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	satisfied := 0
	for _, r := range rows {
		if r.Satisfied {
			satisfied++
		}
	}
	fmt.Printf("%d of %d rules satisfy their condition\n", satisfied, len(rows))
	// Output: 0 of 7 rules satisfy their condition
}

// ExampleNoiseSigmaForGradient reproduces the paper's per-step noise scale
// for the Fig. 2 configuration.
func ExampleNoiseSigmaForGradient() {
	sigma, err := dpbyz.NoiseSigmaForGradient(0.01, 50, dpbyz.Budget{Epsilon: 0.2, Delta: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sigma = %.4f\n", sigma)
	// Output: sigma = 0.0106
}

// ExampleBasicComposition shows the privacy cost of a full 1000-step run
// under classical composition.
func ExampleBasicComposition() {
	total, err := dpbyz.BasicComposition(dpbyz.Budget{Epsilon: 0.2, Delta: 1e-6}, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eps = %.0f, delta = %.0e\n", total.Epsilon, total.Delta)
	// Output: eps = 200, delta = 1e-03
}
