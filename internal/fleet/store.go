package fleet

import (
	"encoding/json"
	"fmt"
	"os"

	"dpbyz/internal/checkpoint"
	"dpbyz/internal/spec"
)

// MetaVersion is the run-metadata schema version; bump on breaking change.
const MetaVersion = 1

// Status is a run's position in the fleet lifecycle.
type Status string

// Run lifecycle states. A restarted service reschedules every run it finds
// in StatusPending or StatusRunning — "running" on disk after a crash means
// "was in flight when the process died", and the snapshot/event-log pair
// carries everything needed to resume it bit-identically.
const (
	StatusPending   Status = "pending"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final: a terminal run is never
// rescheduled and its event log never grows.
func (st Status) Terminal() bool {
	return st == StatusDone || st == StatusFailed || st == StatusCancelled
}

// Meta is the service-side record of one run: identity, scheduling
// directives, lifecycle state and — once terminal — the outcome summary.
// It lives in the run directory's meta.json, written atomically on every
// transition, so a restart reconstructs the whole fleet from the store.
type Meta struct {
	// Version is the metadata schema version (MetaVersion at write time).
	Version int `json:"version"`
	// ID is the run's identity: its directory name and its /runs URL path.
	ID spec.RunID `json:"id"`
	// Seq is the run's global submission sequence number; IDs are minted
	// from it, and a restarted service continues minting above the maximum
	// it finds.
	Seq uint64 `json:"seq"`
	// Priority orders queued runs: higher starts first, ties in Seq order.
	Priority int `json:"priority,omitempty"`
	// Backend names the executing backend: "local" or "cluster".
	Backend string `json:"backend"`
	// CheckpointEvery is the run's resumable-snapshot cadence in steps.
	CheckpointEvery int `json:"checkpointEvery"`
	// Status is the run's lifecycle state.
	Status Status `json:"status"`
	// Error holds the failure cause for StatusFailed runs.
	Error string `json:"error,omitempty"`
	// FinalLoss is the last recorded training loss (terminal runs only).
	FinalLoss *float64 `json:"finalLoss,omitempty"`
	// Cluster carries the run's delivery accounting and per-epoch ledgers
	// when the backend produced them (terminal runs only).
	Cluster *spec.ClusterStats `json:"cluster,omitempty"`
}

// Store is the fleet's on-disk state: one directory per run under a root,
// each holding spec.json, meta.json, snapshot.json and events.jsonl (the
// checkpoint.RunDir layout). Every write is atomic, so a crash at any
// instant leaves each file either old or new, never torn.
type Store struct {
	root string
}

// NewStore addresses a store at root. Nothing is touched until a save.
func NewStore(root string) Store { return Store{root: root} }

// Root returns the store's root directory.
func (s Store) Root() string { return s.root }

// Dir returns the run's directory handle.
func (s Store) Dir(id spec.RunID) checkpoint.RunDir {
	return checkpoint.NewRunDir(s.root, string(id))
}

// SaveMeta atomically writes the run's metadata.
func (s Store) SaveMeta(m *Meta) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encode meta %s: %w", m.ID, err)
	}
	return checkpoint.WriteFileAtomic(s.Dir(m.ID).MetaPath(), append(b, '\n'))
}

// LoadMeta reads and validates the run's metadata.
func (s Store) LoadMeta(id spec.RunID) (*Meta, error) {
	b, err := os.ReadFile(s.Dir(id).MetaPath())
	if err != nil {
		return nil, fmt.Errorf("fleet: read meta %s: %w", id, err)
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("fleet: decode meta %s: %w", id, err)
	}
	if m.Version != MetaVersion {
		return nil, fmt.Errorf("fleet: meta %s: unsupported version %d (want %d)", id, m.Version, MetaVersion)
	}
	if m.ID != id {
		return nil, fmt.Errorf("fleet: meta in %s names run %q", id, m.ID)
	}
	return &m, nil
}

// SaveSpec atomically writes the run's spec document.
func (s Store) SaveSpec(id spec.RunID, sp *spec.Spec) error {
	b, err := sp.JSON()
	if err != nil {
		return fmt.Errorf("fleet: encode spec %s: %w", id, err)
	}
	return checkpoint.WriteFileAtomic(s.Dir(id).SpecPath(), b)
}

// LoadSpec reads and validates the run's spec document.
func (s Store) LoadSpec(id spec.RunID) (*spec.Spec, error) {
	b, err := os.ReadFile(s.Dir(id).SpecPath())
	if err != nil {
		return nil, fmt.Errorf("fleet: read spec %s: %w", id, err)
	}
	sp, err := spec.Parse(b)
	if err != nil {
		return nil, fmt.Errorf("fleet: decode spec %s: %w", id, err)
	}
	return sp, nil
}

// List returns the store's run IDs in lexical — which, for the fleet's
// zero-padded sequential IDs, is submission — order. Directories whose
// names are not valid run IDs are not the store's to manage and are skipped.
func (s Store) List() ([]spec.RunID, error) {
	names, err := checkpoint.ListRunDirs(s.root)
	if err != nil {
		return nil, err
	}
	ids := make([]spec.RunID, 0, len(names))
	for _, name := range names {
		id := spec.RunID(name)
		if id.Validate() != nil {
			continue
		}
		ids = append(ids, id)
	}
	return ids, nil
}
