// Package scratchpos seeds the pooled-scratch escapes scratchalias must
// catch, including the PR-2 RunWorker regression: a decode-scratch buffer
// stored into a result struct and recycled under the caller.
package scratchpos

import "sync"

// message is the pooled, reused decode target.
//
//dpbyz:scratch
type message struct {
	step   int
	params []float64
}

var pool = sync.Pool{New: func() any { return new(message) }}

// decodeFloat64s grows *dst in place and returns the decoded view; the
// returned slice aliases the scratch.
//
//dpbyz:scratch
func decodeFloat64s(dst *[]float64, n int) []float64 {
	if cap(*dst) < n {
		*dst = make([]float64, n)
	}
	*dst = (*dst)[:n]
	return *dst
}

// WorkerResult is a caller-visible result, not a reuse carrier.
type WorkerResult struct {
	Step        int
	FinalParams []float64
}

// RunWorker is the PR-2 regression verbatim: the carrier's params buffer is
// packed into the result and will be recycled under the caller. The int step
// is a copy and must not be flagged.
func RunWorker(m *message) WorkerResult {
	return WorkerResult{
		Step:        m.step,
		FinalParams: m.params, // want `composite literal captures pooled scratch`
	}
}

// StoreField leaks the same alias through a field assignment.
func StoreField(r *WorkerResult, m *message) {
	r.FinalParams = m.params // want `storing pooled scratch into field FinalParams`
}

// Leak returns the provider's scratch view directly.
func Leak(buf *[]float64) []float64 {
	out := decodeFloat64s(buf, 8)
	return out // want `returning pooled scratch`
}

// LeakSlice returns a sub-slice of the scratch; slicing keeps the alias.
func LeakSlice(buf *[]float64) []float64 {
	out := decodeFloat64s(buf, 8)
	return out[:4] // want `returning pooled scratch`
}

// Send hands the scratch to a receiver that outlives its reuse window.
func Send(ch chan []float64, m *message) {
	ch <- m.params // want `sending pooled scratch on a channel`
}

// FromPool taints through (*sync.Pool).Get and a type assertion.
func FromPool() []float64 {
	m := pool.Get().(*message)
	defer pool.Put(m)
	return m.params // want `returning pooled scratch`
}
