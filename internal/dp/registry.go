package dp

import (
	"fmt"
	"sort"
)

// MechanismParams carries the calibration inputs the registered mechanisms
// draw from. A serializable run spec stores these numbers plus a mechanism
// name instead of a live Mechanism, so the same JSON document can be
// materialized on any backend.
type MechanismParams struct {
	// GMax is the gradient clipping bound the sensitivity is derived from.
	GMax float64
	// BatchSize is the per-step batch size b.
	BatchSize int
	// Dim is the model dimension (needed by the Laplace L1 calibration).
	Dim int
	// Budget is the per-step (ε, δ) budget. Laplace uses only Epsilon.
	Budget Budget
	// Sigma, when positive, bypasses the budget calibration and sets the
	// noise scale directly (std dev for Gaussian, scale for Laplace) — for
	// analyses that sweep the noise level itself.
	Sigma float64
}

// MechanismConstructor builds a mechanism from calibration parameters.
type MechanismConstructor func(p MechanismParams) (Mechanism, error)

// mechanisms maps mechanism names to constructors. Populated once at
// initialisation and read-only afterwards, mirroring gar's and attack's
// registries.
var mechanisms = map[string]MechanismConstructor{
	"gaussian": func(p MechanismParams) (Mechanism, error) {
		if p.Sigma > 0 {
			return NewGaussianWithSigma(p.Sigma)
		}
		return NewGaussian(p.GMax, p.BatchSize, p.Budget)
	},
	"laplace": func(p MechanismParams) (Mechanism, error) {
		if p.Sigma > 0 {
			return NewLaplaceWithScale(p.Sigma)
		}
		return NewLaplaceForGradient(p.GMax, p.BatchSize, p.Dim, p.Budget.Epsilon)
	},
}

// New builds the named mechanism from the given calibration parameters. The
// name must be one of Names().
func New(name string, p MechanismParams) (Mechanism, error) {
	ctor, ok := mechanisms[name]
	if !ok {
		return nil, fmt.Errorf("dp: unknown mechanism %q (known: %v)", name, Names())
	}
	return ctor(p)
}

// Names returns the sorted list of registered mechanism names.
func Names() []string {
	names := make([]string, 0, len(mechanisms))
	for name := range mechanisms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
