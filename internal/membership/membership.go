// Package membership is the epoched-membership layer of the networked
// parameter server: it decides, deterministically from an explicit event
// history, which workers belong to each training epoch.
//
// The cluster's original contract — the worker set fixed at NewServer
// survives the whole run — is the opposite of the paper's threat model,
// where the adversary chooses which f of n workers misbehave each round.
// This package replaces it with epochs: the run is partitioned into
// EpochRounds-round windows, and the member view only changes at window
// boundaries. Between boundaries the view is frozen, so every round's
// accounting has a well-defined n; at a boundary, handshaken workers
// waiting to join are admitted, disconnected or persistently silent
// workers are evicted, and f is re-derived from the live count via FRatio
// — the self-stabilizing shape of Dolev/Dubois/Tixeuil's communication
// layer, specialized to synchronous rounds.
//
// The Tracker is a pure state machine over Handshake / Disconnect /
// RecordAccept / RecordMiss / AdvanceEpoch events: two trackers fed the
// same event sequence produce identical views. The cluster server drives
// it from real connection events (inherently timing-dependent), the local
// simulator from a deterministic schedule, and the model checker in
// machine.go from exhaustively enumerated event interleavings — all three
// run the same transition code.
//
//dpbyz:deterministic
package membership

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultEvictAfter is the consecutive-missed-round streak after which a
// silent member is evicted at the next epoch boundary. Two full rounds of
// silence distinguishes a crash from a transient hiccup without letting a
// dead worker dilute more than one boundary's view.
const DefaultEvictAfter = 2

// Config bounds an epoched-membership run.
type Config struct {
	// MinWorkers is the population floor: the run starts once this many
	// workers have handshaken, and a boundary that would leave fewer live
	// members aborts the run instead of silently training on a sliver.
	MinWorkers int
	// MaxWorkers caps the population (and the valid worker-id range
	// [0, MaxWorkers)); joins beyond it are rejected at handshake.
	MaxWorkers int
	// FRatio is the Byzantine fraction assumed of every view: epoch e
	// tolerates f_e = floor(FRatio · n_e) Byzantine members.
	FRatio float64
	// EpochRounds is the boundary spacing: views are re-derived every
	// EpochRounds rounds.
	EpochRounds int
	// EvictAfter is the missed-round streak that marks a member for
	// eviction (0 means DefaultEvictAfter).
	EvictAfter int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MinWorkers < 1 {
		return fmt.Errorf("membership: min workers %d below 1", c.MinWorkers)
	}
	if c.MaxWorkers < c.MinWorkers {
		return fmt.Errorf("membership: max workers %d below min %d", c.MaxWorkers, c.MinWorkers)
	}
	if c.FRatio < 0 || c.FRatio >= 0.5 {
		return fmt.Errorf("membership: f ratio %v outside [0, 0.5)", c.FRatio)
	}
	if c.EpochRounds < 1 {
		return fmt.Errorf("membership: epoch length %d below 1 round", c.EpochRounds)
	}
	if c.EvictAfter < 0 {
		return fmt.Errorf("membership: negative evict-after %d", c.EvictAfter)
	}
	return nil
}

// evictAfter returns the configured streak with the default applied.
func (c Config) evictAfter() int {
	if c.EvictAfter > 0 {
		return c.EvictAfter
	}
	return DefaultEvictAfter
}

// F is the per-epoch Byzantine allowance floor(FRatio·n). The small bias
// keeps exact ratios (0.3 · 10) from rounding down through float error.
func (c Config) F(n int) int {
	return int(c.FRatio*float64(n) + 1e-9)
}

// View is one epoch's frozen membership.
type View struct {
	// Epoch is the 0-based epoch number.
	Epoch int
	// Members holds the live worker ids, sorted ascending.
	Members []int
	// F is the epoch's Byzantine allowance floor(FRatio·n).
	F int
}

// N is the view's population.
func (v View) N() int { return len(v.Members) }

// Quorum is the bounded-staleness commit threshold n − f − stragglers for
// this view, clamped to at least 1 (a non-positive budget degenerates to
// full synchrony, which the caller expresses as quorum == n).
func (v View) Quorum(stragglers int) int {
	q := v.N() - v.F - stragglers
	if q < 1 || q > v.N() {
		return v.N()
	}
	return q
}

// Contains reports whether id is a member (Members is sorted).
func (v View) Contains(id int) bool {
	i := sort.SearchInts(v.Members, id)
	return i < len(v.Members) && v.Members[i] == id
}

// EpochStat is one epoch's closed books. Over a completed run the ledger
// identity Σ (Accepted_e + Missed_e) == Σ N_e × Rounds_e holds exactly.
type EpochStat struct {
	// Epoch is the 0-based epoch number.
	Epoch int `json:"epoch"`
	// N and F are the epoch's population and Byzantine allowance.
	N int `json:"n"`
	F int `json:"f"`
	// Rounds is how many rounds committed inside the epoch.
	Rounds int `json:"rounds"`
	// Accepted and Missed partition the epoch's N×Rounds delivery slots.
	Accepted int `json:"accepted"`
	Missed   int `json:"missed"`
	// View records the member ids (sorted; omitted when the caller's
	// population is trivially [0, n)).
	View []int `json:"view,omitempty"`
}

// BalanceEpochs checks the exact per-epoch ledger identity
// Accepted+Missed == Σ N_e × Rounds_e over a slice of closed epochs.
func BalanceEpochs(epochs []EpochStat) error {
	slots, accepted, missed := 0, 0, 0
	for _, e := range epochs {
		slots += e.N * e.Rounds
		accepted += e.Accepted
		missed += e.Missed
		if e.Accepted+e.Missed != e.N*e.Rounds {
			return fmt.Errorf("membership: epoch %d books %d+%d != %d×%d",
				e.Epoch, e.Accepted, e.Missed, e.N, e.Rounds)
		}
	}
	if accepted+missed != slots {
		return fmt.Errorf("membership: ledger %d+%d != %d total slots", accepted, missed, slots)
	}
	return nil
}

// Membership errors.
var (
	// ErrViewCollapsed reports a boundary that would leave fewer than
	// MinWorkers live members.
	ErrViewCollapsed = errors.New("membership: live view collapsed below min workers")
	// ErrAtCapacity rejects a handshake beyond MaxWorkers.
	ErrAtCapacity = errors.New("membership: population at max workers")
	// ErrBadWorkerID rejects an id outside [0, MaxWorkers).
	ErrBadWorkerID = errors.New("membership: worker id outside [0, max)")
)

// status is a tracked worker's lifecycle position.
type status uint8

const (
	statusPending status = iota // handshaken, waiting for a boundary
	statusLive                  // in the current view
	statusEvicted               // removed; may handshake again
)

// memberState is the Tracker's per-worker record.
type memberState struct {
	status status
	// connected is false once the transport reported the worker gone;
	// a disconnected live member is evicted at the next boundary.
	connected bool
	// missedStreak counts consecutive rounds the member's slot was
	// zero-padded; EvictAfter consecutive misses evict at the boundary.
	missedStreak int
}

// Tracker is the deterministic epoch-membership state machine. It is
// safe for concurrent use (the cluster server's accept loop, reader
// goroutines and round loop all feed it); determinism is with respect to
// the event order the callers establish.
type Tracker struct {
	mu      sync.Mutex
	cfg     Config
	members map[int]*memberState
	// handshaken records every id that ever completed a handshake — the
	// model-checked safety invariant is view ⊆ handshaken.
	handshaken map[int]bool
	view       View
	epoch      int
}

// NewTracker validates cfg and returns an empty tracker (epoch −1: the
// first AdvanceEpoch call admits the initial cohort as epoch 0).
func NewTracker(cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{
		cfg:        cfg,
		members:    make(map[int]*memberState),
		handshaken: make(map[int]bool),
		epoch:      -1,
	}, nil
}

// Config returns the tracker's configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Handshake records a completed worker handshake: a new or previously
// evicted id becomes pending (admitted at the next boundary), and a
// current member reconnecting after a transport drop is simply marked
// connected again (it keeps its slot; its missed rounds still count).
func (t *Tracker) Handshake(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= t.cfg.MaxWorkers {
		return fmt.Errorf("%w: %d", ErrBadWorkerID, id)
	}
	m, ok := t.members[id]
	if ok && m.status != statusEvicted {
		m.connected = true
		return nil
	}
	if t.populationLocked() >= t.cfg.MaxWorkers {
		return fmt.Errorf("%w: %d", ErrAtCapacity, t.cfg.MaxWorkers)
	}
	t.members[id] = &memberState{status: statusPending, connected: true}
	t.handshaken[id] = true
	return nil
}

// populationLocked counts the non-evicted ids (live + pending).
func (t *Tracker) populationLocked() int {
	n := 0
	for _, m := range t.members {
		if m.status != statusEvicted {
			n++
		}
	}
	return n
}

// Population returns the live + pending count (the gather phase waits on
// it reaching MinWorkers).
func (t *Tracker) Population() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.populationLocked()
}

// Disconnect records that the transport lost id's connection. A live
// member stays in the view until the boundary (its rounds count as
// missed); a pending worker is dropped immediately — it never joined.
func (t *Tracker) Disconnect(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.members[id]
	if !ok {
		return
	}
	m.connected = false
	if m.status == statusPending {
		m.status = statusEvicted
	}
}

// RecordAccept resets id's missed streak after its submission entered a
// round's aggregation.
//
//dpbyz:hotpath
func (t *Tracker) RecordAccept(id int) {
	t.mu.Lock()
	if m, ok := t.members[id]; ok {
		m.missedStreak = 0
	}
	t.mu.Unlock()
}

// RecordMiss advances id's missed streak after its slot was zero-padded.
//
//dpbyz:hotpath
func (t *Tracker) RecordMiss(id int) {
	t.mu.Lock()
	if m, ok := t.members[id]; ok {
		m.missedStreak++
	}
	t.mu.Unlock()
}

// AdvanceEpoch closes the epoch: live members that disconnected or out-ran
// the missed-round streak are evicted, pending workers are admitted, and
// the new view (with its re-derived f) becomes current. It returns the new
// view plus the ids admitted and evicted at this boundary, and fails with
// ErrViewCollapsed when fewer than MinWorkers members would remain.
func (t *Tracker) AdvanceEpoch() (View, []int, []int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	evictAfter := t.cfg.evictAfter()
	var admitted, evicted, members []int
	// Order-insensitive: per-member status updates are keyed by id and the
	// collected slices are sorted below before anything reads them.
	for id, m := range t.members { //dpbyz:orderedmap
		switch m.status {
		case statusLive:
			if !m.connected || m.missedStreak >= evictAfter {
				m.status = statusEvicted
				m.missedStreak = 0
				evicted = append(evicted, id)
				continue
			}
			members = append(members, id)
		case statusPending:
			m.status = statusLive
			m.missedStreak = 0
			admitted = append(admitted, id)
			members = append(members, id)
		}
	}
	// Map iteration feeds results only through these sorts: the returned
	// view and deltas are order-canonical regardless of iteration order.
	sort.Ints(admitted)
	sort.Ints(evicted)
	sort.Ints(members)
	if len(members) < t.cfg.MinWorkers {
		return View{}, nil, nil, fmt.Errorf("%w: %d live, min %d",
			ErrViewCollapsed, len(members), t.cfg.MinWorkers)
	}
	t.epoch++
	t.view = View{Epoch: t.epoch, Members: members, F: t.cfg.F(len(members))}
	return t.view, admitted, evicted, nil
}

// View returns the current epoch's view (zero before the first boundary).
func (t *Tracker) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.view
}

// Handshaken returns every id that ever completed a handshake, sorted.
func (t *Tracker) Handshaken() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]int, 0, len(t.handshaken))
	for id := range t.handshaken {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Clone deep-copies the tracker — the model checker forks one per
// explored transition so branches never share mutable state.
func (t *Tracker) Clone() *Tracker {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Tracker{
		cfg:        t.cfg,
		members:    make(map[int]*memberState, len(t.members)),
		handshaken: make(map[int]bool, len(t.handshaken)),
		view:       View{Epoch: t.view.Epoch, Members: append([]int(nil), t.view.Members...), F: t.view.F},
		epoch:      t.epoch,
	}
	// Order-insensitive: each member is copied into the clone's map under
	// its own id; no cross-member state is accumulated.
	for id, m := range t.members { //dpbyz:orderedmap
		mc := *m
		c.members[id] = &mc
	}
	for id := range t.handshaken {
		c.handshaken[id] = true
	}
	return c
}

// stateKey canonically encodes the tracker's full state for the model
// checker's visited set. Worker ids are enumerated in order, so two
// trackers with identical logical state produce identical keys.
func (t *Tracker) stateKey() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := make([]byte, 0, 4+6*t.cfg.MaxWorkers)
	buf = append(buf, byte(t.epoch+1))
	for id := 0; id < t.cfg.MaxWorkers; id++ {
		m, ok := t.members[id]
		if !ok {
			buf = append(buf, 0xFF)
			continue
		}
		b := byte(m.status)
		if m.connected {
			b |= 0x10
		}
		buf = append(buf, b, byte(m.missedStreak))
		if t.handshaken[id] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return string(buf)
}
