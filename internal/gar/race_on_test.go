//go:build race

package gar

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
