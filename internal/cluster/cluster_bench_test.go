package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"sync"
	"testing"
	"time"

	"dpbyz/internal/gar"
)

// Benchmark shape: one synchronous round of the paper's parameter server
// at n=64 workers, d=10^4 — the server frames one params broadcast and
// parses one gradient per worker, each worker parses one broadcast and
// frames one gradient.
const (
	benchWorkers = 64
	benchDim     = 10_000
)

// gobEnvelope reproduces the pre-binary wire format (a gob-encoded union
// struct per message) as the baseline the codec is measured against.
type gobEnvelope struct {
	Hello    *Hello
	Params   *Params
	Gradient *Gradient
}

// BenchmarkClusterRound measures rounds/sec and allocs/op of the framing
// layer (binary vs. the old gob envelope) and of the full cluster stack
// over the in-process transport. One op = one synchronous round at n=64,
// d=1e4.
func BenchmarkClusterRound(b *testing.B) {
	params := Params{Step: 1, Weights: make([]float64, benchDim)}
	grad := Gradient{WorkerID: 0, Step: 1, Grad: make([]float64, benchDim)}
	for i := 0; i < benchDim; i++ {
		params.Weights[i] = float64(i) * 1e-4
		grad.Grad[i] = float64(i) * 1e-6
	}

	b.Run("framing=binary", func(b *testing.B) {
		var wbuf []byte
		var m message
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for w := 0; w < benchWorkers; w++ {
				// Server frames the broadcast, worker parses it.
				wbuf = appendParamsFrame(wbuf[:0], params)
				kind, n, err := parseHeader(wbuf, DefaultMaxFrameBytes)
				if err != nil {
					b.Fatal(err)
				}
				if err := decodePayload(kind, wbuf[frameHeaderSize:frameHeaderSize+n], &m); err != nil {
					b.Fatal(err)
				}
				// Worker frames its gradient, server parses it.
				wbuf = appendGradientFrame(wbuf[:0], grad)
				kind, n, err = parseHeader(wbuf, DefaultMaxFrameBytes)
				if err != nil {
					b.Fatal(err)
				}
				if err := decodePayload(kind, wbuf[frameHeaderSize:frameHeaderSize+n], &m); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		m.releaseScratch()
		reportRoundsPerSec(b)
	})

	b.Run("framing=gob", func(b *testing.B) {
		// One persistent encoder/decoder pair per direction per worker,
		// exactly like the old conn kept gob codecs per connection.
		type link struct {
			downBuf bytes.Buffer
			downEnc *gob.Encoder
			downDec *gob.Decoder
			upBuf   bytes.Buffer
			upEnc   *gob.Encoder
			upDec   *gob.Decoder
		}
		links := make([]*link, benchWorkers)
		for i := range links {
			l := &link{}
			l.downEnc, l.downDec = gob.NewEncoder(&l.downBuf), gob.NewDecoder(&l.downBuf)
			l.upEnc, l.upDec = gob.NewEncoder(&l.upBuf), gob.NewDecoder(&l.upBuf)
			links[i] = l
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, l := range links {
				e := gobEnvelope{Params: &params}
				if err := l.downEnc.Encode(&e); err != nil {
					b.Fatal(err)
				}
				var in gobEnvelope
				if err := l.downDec.Decode(&in); err != nil {
					b.Fatal(err)
				}
				e = gobEnvelope{Gradient: &grad}
				if err := l.upEnc.Encode(&e); err != nil {
					b.Fatal(err)
				}
				in = gobEnvelope{}
				if err := l.upDec.Decode(&in); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		reportRoundsPerSec(b)
	})

	b.Run("e2e=chan-binary", func(b *testing.B) {
		benchEndToEnd(b, grad.Grad)
	})
}

// benchEndToEnd runs the real Server for b.N rounds against raw echo
// workers over the in-process transport: full framing, fan-in, buffer
// recycling and aggregation, none of the model/dataset compute.
func benchEndToEnd(b *testing.B, gradVec []float64) {
	tr := NewChanTransport()
	g, err := gar.New("average", benchWorkers, 0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Addr:         "bench",
		Transport:    tr,
		GAR:          g,
		Dim:          benchDim,
		Steps:        b.N,
		LearningRate: 1e-6,
		RoundTimeout: time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for id := 0; id < benchWorkers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			raw, err := tr.Dial(ctx, "bench")
			if err != nil {
				b.Error(err)
				return
			}
			c := newConn(raw)
			defer c.close()
			if err := c.sendHello(Hello{WorkerID: id}, time.Time{}); err != nil {
				b.Error(err)
				return
			}
			for {
				m, err := c.receive(time.Time{})
				if err != nil {
					return
				}
				if m.kind != msgParams || m.params.Done {
					return
				}
				g := Gradient{WorkerID: id, Step: m.params.Step, Grad: gradVec}
				if err := c.sendGradient(g, time.Time{}); err != nil {
					return
				}
			}
		}(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := srv.Run(ctx)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	wg.Wait()
	if res.MissedGradients != 0 {
		b.Fatalf("benchmark run missed %d gradients", res.MissedGradients)
	}
	reportRoundsPerSec(b)
}

func reportRoundsPerSec(b *testing.B) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "rounds/sec")
	}
}
