package randx

import "testing"

// A restored stream must reproduce the original's draws bit for bit across
// every sampler, including mid-sequence snapshots and the Box-Muller spare
// cache.
func TestStreamStateRoundTrip(t *testing.T) {
	r := New(42)
	// Burn a mixed prefix so the snapshot is mid-sequence, with a cached
	// Box-Muller spare pending.
	for i := 0; i < 100; i++ {
		r.Uint64()
		r.Normal()
	}
	r.NormalBoxMuller() // leaves hasSpare = true

	st := r.State()
	clone := Restore(st)

	idxA, idxB := make([]int, 16), make([]int, 16)
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("Uint64 diverges at %d: %d != %d", i, a, b)
		}
		if a, b := r.Normal(), clone.Normal(); a != b {
			t.Fatalf("Normal diverges at %d: %v != %v", i, a, b)
		}
		if a, b := r.NormalBoxMuller(), clone.NormalBoxMuller(); a != b {
			t.Fatalf("NormalBoxMuller diverges at %d: %v != %v", i, a, b)
		}
		if a, b := r.Laplace(0.5), clone.Laplace(0.5); a != b {
			t.Fatalf("Laplace diverges at %d: %v != %v", i, a, b)
		}
		r.Sample(idxA, 500)
		clone.Sample(idxB, 500)
		for j := range idxA {
			if idxA[j] != idxB[j] {
				t.Fatalf("Sample diverges at %d[%d]", i, j)
			}
		}
	}

	// SetState rewinds an already-used stream.
	r2 := New(7)
	r2.SetState(st)
	r3 := Restore(st)
	for i := 0; i < 100; i++ {
		if a, b := r2.Normal(), r3.Normal(); a != b {
			t.Fatalf("SetState diverges at %d", i)
		}
	}
}
