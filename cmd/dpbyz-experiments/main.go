// Command dpbyz-experiments regenerates the paper's tables and figures.
//
//	dpbyz-experiments -exp all            # everything, paper scale
//	dpbyz-experiments -exp fig2 -smoke    # one figure, reduced scale
//	dpbyz-experiments -exp spec -spec run.json -seeds 5
//
// Experiments: fig2, fig3, fig4 (loss/accuracy grids at b = 50/10/500),
// table1 (VN-condition thresholds across model sizes), thm1 (error rate vs
// model dimension), epssweep (the full version's ε sweep), hetsweep (the
// heterogeneity sweep: Dirichlet label-skew β × aggregation rule under
// attack with DP on), stalesweep (the bounded-staleness sweep: per-round
// straggler count × aggregation rule with exact delivery accounting) and
// spec (any JSON run spec — the same file
// dpbyz-train and the cluster binaries consume — repeated across seeds and
// aggregated like a grid cell).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dpbyz"
	"dpbyz/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dpbyz-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: all|fig2|fig3|fig4|figmlp|table1|thm1|epssweep|hetsweep|stalesweep|vnempirical|crossover|spec")
		specPath = flag.String("spec", "", "JSON run-spec file for -exp spec: the spec is repeated across -seeds and aggregated like a grid cell")
		smoke    = flag.Bool("smoke", false, "run at reduced scale (fast sanity pass)")
		steps    = flag.Int("steps", 0, "override step count (0 = experiment default)")
		seeds    = flag.Int("seeds", 0, "override seed count (0 = experiment default)")
		parallel = flag.Int("parallel", 0, "max concurrent (condition, seed) cells (0 = GOMAXPROCS, 1 = serial; results are identical either way)")
		progress = flag.Bool("progress", true, "report per-cell grid progress on stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale := experiments.Scale{Steps: *steps, Seeds: *seeds}
	if *smoke {
		scale = experiments.ScaleSmall()
		if *steps > 0 {
			scale.Steps = *steps
		}
		if *seeds > 0 {
			scale.Seeds = *seeds
		}
	}
	sched := func(name string) experiments.Sched {
		s := experiments.Sched{Workers: *parallel}
		if *progress {
			s.Progress = func(done, total int, label string) {
				fmt.Fprintf(os.Stderr, "  %s: %d/%d cells (%s)\n", name, done, total, label)
			}
		}
		return s
	}

	wanted := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, w := range wanted {
			if w == "all" || w == name {
				return true
			}
		}
		return false
	}
	ran := 0

	for _, fig := range []struct {
		name string
		spec experiments.FigureSpec
	}{
		{name: "fig2", spec: experiments.Figure2(scale)},
		{name: "fig3", spec: experiments.Figure3(scale)},
		{name: "fig4", spec: experiments.Figure4(scale)},
		{name: "figmlp", spec: experiments.FigureMLP(scale)},
	} {
		if !want(fig.name) {
			continue
		}
		ran++
		fmt.Fprintf(os.Stderr, "running %s...\n", fig.name)
		fig.spec.Sched = sched(fig.name)
		res, err := experiments.RunFigure(ctx, fig.spec)
		if err != nil {
			return err
		}
		if err := experiments.WriteFigureReport(os.Stdout, res); err != nil {
			return err
		}
		fmt.Println(experiments.Summary(res))
		fmt.Println()
	}

	if want("table1") {
		ran++
		spec := experiments.Table1Spec{}
		res, err := experiments.RunTable1(spec)
		if err != nil {
			return err
		}
		if err := experiments.WriteTable1Report(os.Stdout, res, 50, 5.0/23); err != nil {
			return err
		}
		fmt.Println()
	}

	if want("thm1") {
		ran++
		fmt.Fprintln(os.Stderr, "running thm1...")
		spec := experiments.Theorem1Spec{}
		if *smoke {
			spec = experiments.Theorem1Spec{Dims: []int{8, 32, 128}, Steps: 150, Seeds: 2, DatasetSize: 1500}
		}
		points, err := experiments.RunTheorem1(ctx, spec)
		if err != nil {
			return err
		}
		fmt.Println("Theorem 1: final suboptimality vs model dimension")
		if err := experiments.WriteTheorem1Report(os.Stdout, points); err != nil {
			return err
		}
		bPoints, err := experiments.RunTheorem1BatchSweep(ctx, spec, nil)
		if err != nil {
			return err
		}
		tPoints, err := experiments.RunTheorem1StepsSweep(ctx, spec, nil)
		if err != nil {
			return err
		}
		fmt.Println("Theorem 1: rate factors 1/b^2 and 1/T (unclipped harness)")
		if err := experiments.WriteTheorem1SweepReports(os.Stdout, bPoints, tPoints); err != nil {
			return err
		}
		fmt.Println()
	}

	if want("vnempirical") {
		ran++
		fmt.Fprintln(os.Stderr, "running vnempirical...")
		points, err := experiments.RunVNEmpirical(ctx, experiments.VNEmpiricalSpec{})
		if err != nil {
			return err
		}
		fmt.Println("Empirical DP-adjusted VN ratio vs k_F(n, f) (Eq. 8)")
		if err := experiments.WriteVNEmpiricalReport(os.Stdout, points); err != nil {
			return err
		}
		fmt.Println()
	}

	if want("crossover") {
		ran++
		fmt.Fprintln(os.Stderr, "running crossover...")
		res, err := experiments.RunCrossover(ctx, experiments.CrossoverSpec{Scale: scale})
		if err != nil {
			return err
		}
		fmt.Println("Batch-size crossover (final accuracy per condition)")
		if err := experiments.WriteCrossoverReport(os.Stdout, res); err != nil {
			return err
		}
		fmt.Println()
	}

	if want("epssweep") {
		ran++
		fmt.Fprintln(os.Stderr, "running epssweep...")
		points, err := experiments.RunEpsilonSweep(ctx,
			experiments.EpsilonSweepSpec{Scale: scale, Sched: sched("epssweep")})
		if err != nil {
			return err
		}
		fmt.Println("Epsilon sweep (alie attack, MDA, DP on)")
		if err := experiments.WriteEpsilonSweepReport(os.Stdout, points); err != nil {
			return err
		}
	}

	if want("hetsweep") {
		ran++
		fmt.Fprintln(os.Stderr, "running hetsweep...")
		points, err := experiments.RunHeterogeneitySweep(ctx, experiments.HeterogeneitySweepSpec{
			GARNames: []string{"mda", "trimmedmean"},
			Scale:    scale,
			Sched:    sched("hetsweep"),
		})
		if err != nil {
			return err
		}
		fmt.Println("Heterogeneity sweep (Dirichlet beta, alie attack, DP on)")
		if err := experiments.WriteHeterogeneitySweepReport(os.Stdout, points); err != nil {
			return err
		}
		fmt.Println()
	}

	if want("stalesweep") {
		ran++
		fmt.Fprintln(os.Stderr, "running stalesweep...")
		points, err := experiments.RunStalenessSweep(ctx, experiments.StalenessSweepSpec{
			GARNames: []string{"mda", "trimmedmean"},
			Scale:    scale,
			Sched:    sched("stalesweep"),
		})
		if err != nil {
			return err
		}
		fmt.Println("Staleness sweep (quorum = n-f-s, late frames credited, alie attack, DP on)")
		if err := experiments.WriteStalenessSweepReport(os.Stdout, points); err != nil {
			return err
		}
		fmt.Println()
	}

	if want("spec") && *specPath != "" {
		ran++
		fmt.Fprintln(os.Stderr, "running spec...")
		s, err := dpbyz.LoadSpec(*specPath)
		if err != nil {
			return err
		}
		cfg := experiments.SpecCellConfig{Run: *s, Seeds: *seeds, Sched: sched("spec")}
		if cfg.Seeds == 0 && !*smoke {
			cfg.Seeds = experiments.PaperSeeds
		}
		if *steps > 0 {
			cfg.Run.Steps = *steps
		}
		cell, err := experiments.RunSpecCell(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("Spec cell %s (%s)\n", cell.Condition.Label, *specPath)
		if err := experiments.WriteCellReport(os.Stdout, cell, max(cfg.Seeds, 1)); err != nil {
			return err
		}
	} else if want("spec") && *exp == "spec" {
		return fmt.Errorf("-exp spec needs -spec <file> (generate one with dpbyz-train -dump-spec)")
	}

	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
