// Command dpbyz-train runs a single training experiment described by a
// serializable run spec and prints the metric trace as CSV.
//
// The scenario comes from one dpbyz.Spec — either a JSON file (-spec) or
// assembled from the flags — and runs on a chosen backend:
//
//	dpbyz-train -gar mda -attack alie -dp -batch 50 -steps 1000 -seed 1
//	dpbyz-train -spec run.json                     # same, from a file
//	dpbyz-train -spec run.json -backend cluster    # in-process distributed
//	dpbyz-train -gar mda -attack alie -dp -dump-spec > run.json
//
// The emitted spec file is the same document cmd/dpbyz-server,
// cmd/dpbyz-worker and cmd/dpbyz-experiments -exp spec consume.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dpbyz"
	"dpbyz/internal/checkpoint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dpbyz-train:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		specPath = flag.String("spec", "", "JSON run-spec file (overrides the scenario flags)")
		dumpSpec = flag.Bool("dump-spec", false, "print the run spec as JSON and exit without training")
		backend  = flag.String("backend", "local", "execution backend: local|cluster (cluster = in-process distributed run over a chan transport)")

		garName    = flag.String("gar", "mda", "aggregation rule (see -list)")
		attackArg  = flag.String("attack", "", "attack name, empty for the unattacked averaging baseline (see -list)")
		workers    = flag.Int("n", 11, "total workers")
		byz        = flag.Int("f", 5, "max Byzantine workers")
		steps      = flag.Int("steps", 1000, "SGD steps T")
		batch      = flag.Int("batch", 50, "batch size b")
		lr         = flag.Float64("lr", 2, "learning rate")
		momentum   = flag.Float64("momentum", 0.99, "worker-side momentum coefficient")
		serverMom  = flag.Bool("server-momentum", false, "apply momentum at the server instead of the workers")
		postNoise  = flag.Bool("post-noise-momentum", false, "theory-faithful ordering: per-sample clip, noise, then momentum")
		modelName  = flag.String("model", "logistic-mse", "model: logistic-mse|logistic-nll|mlp")
		hidden     = flag.Int("hidden", 16, "hidden width for -model mlp")
		clip       = flag.Float64("clip", 0.01, "gradient clipping bound G_max")
		dpOn       = flag.Bool("dp", false, "inject DP noise (see -mechanism)")
		mechName   = flag.String("mechanism", "gaussian", "DP mechanism (see -list)")
		epsilon    = flag.Float64("eps", 0.2, "per-step privacy epsilon")
		delta      = flag.Float64("delta", 1e-6, "per-step privacy delta")
		seed       = flag.Uint64("seed", 1, "random seed")
		bucket     = flag.Int("bucket", 0, "bucketed pre-aggregation: average seed-derived buckets of this size before the GAR (0 = flat topology)")
		bucketSeed = flag.Uint64("bucket-seed", 0, "bucket-deal seed for -bucket (0 = derive from -seed)")
		stragglers = flag.Int("stragglers", 0, "bounded-staleness quorum: fire each round at n-f-stragglers submissions (0 = fully synchronous)")
		late       = flag.String("late", "credit", "late-frame policy with -stragglers: credit|discard")

		epochRounds = flag.Int("epoch-rounds", 0, "epoched membership: re-derive the worker view, f and the GAR every k rounds (0 = fixed cohort)")
		minWorkers  = flag.Int("min-workers", 0, "membership population floor (0 = -n)")
		maxWorkers  = flag.Int("max-workers", 0, "membership population cap (0 = -n)")
		fRatio      = flag.Float64("f-ratio", 0, "membership Byzantine fraction; each epoch tolerates floor(f-ratio*n_e) (0 = -f/-n)")

		partName  = flag.String("partition", "", "dataset partitioner: iid|dirichlet|shard|quantity (empty = IID, every worker samples the full split)")
		partBeta  = flag.Float64("beta", 0, "Dirichlet concentration for -partition dirichlet (0 = default)")
		partShard = flag.Int("shards", 0, "label-sorted shards per worker for -partition shard (0 = default)")
		partAlpha = flag.Float64("alpha", 0, "power-law exponent for -partition quantity (0 = default)")
		dsSize    = flag.Int("dataset", 11055, "synthetic dataset size")
		features  = flag.Int("features", 68, "feature dimension")
		libsvm    = flag.String("libsvm", "", "optional LIBSVM file to train on instead of synthetic data")
		accEvery  = flag.Int("acc-every", 50, "measure accuracy every k steps")

		ckptPath  = flag.String("checkpoint", "", "write a resumable run snapshot to this path")
		ckptEvery = flag.Int("checkpoint-every", 100, "snapshot every k steps (with -checkpoint)")
		resume    = flag.String("resume", "", "resume from a snapshot written via -checkpoint")
		jsonl     = flag.String("jsonl", "", "stream per-step metrics as JSON lines to this file (- for stderr)")
		progress  = flag.Int("progress", 0, "print a progress line every k steps (0 disables)")
		savePath  = flag.String("save", "", "write the trained model as a JSON checkpoint to this path")
		list      = flag.Bool("list", false, "list registered GARs, attacks and mechanisms, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("GARs:      ", dpbyz.GARNames())
		fmt.Println("attacks:   ", dpbyz.AttackNames(), "(adaptive:", dpbyz.AdaptiveAttackNames(), ")")
		fmt.Println("mechanisms:", dpbyz.MechanismNames())
		fmt.Println("partitions:", dpbyz.PartitionNames())
		return nil
	}

	var s dpbyz.Spec
	if *specPath != "" {
		loaded, err := dpbyz.LoadSpec(*specPath)
		if err != nil {
			return err
		}
		s = *loaded
	} else {
		s = dpbyz.Spec{
			Data: dpbyz.DataSpec{N: *dsSize, Features: *features},
			Model: dpbyz.ModelSpec{
				Name: *modelName, Hidden: mlpHidden(*modelName, *hidden),
			},
			Steps:             *steps,
			BatchSize:         *batch,
			LearningRate:      *lr,
			MomentumPostNoise: *postNoise,
			ClipNorm:          *clip,
			Seed:              *seed,
			AccuracyEvery:     *accEvery,
		}
		if *libsvm != "" {
			s.Data = dpbyz.DataSpec{Source: "libsvm", Path: *libsvm, Features: *features}
		}
		if *serverMom {
			s.Momentum = *momentum
		} else {
			s.WorkerMomentum = *momentum
		}
		if *attackArg == "" {
			// Unattacked baseline: all workers honest, plain averaging (the
			// paper's convention for the no-attack cells).
			s.GAR = dpbyz.GARSpec{Name: "average", N: *workers}
		} else {
			s.GAR = dpbyz.GARSpec{Name: *garName, N: *workers, F: *byz}
			s.Attack = &dpbyz.AttackSpec{Name: *attackArg}
		}
		if *dpOn {
			s.Mechanism = &dpbyz.MechanismSpec{Name: *mechName, Epsilon: *epsilon, Delta: *delta}
		}
		if *partName != "" {
			s.Partition = &dpbyz.PartitionSpec{
				Name: *partName, Beta: *partBeta, Shards: *partShard, Alpha: *partAlpha,
			}
		}
		if *bucket > 0 {
			s.Topology = &dpbyz.TopologySpec{Name: "bucketed", BucketSize: *bucket, Seed: *bucketSeed}
		}
		if *stragglers > 0 {
			s.Staleness = &dpbyz.StalenessSpec{Stragglers: *stragglers, Late: *late}
		}
		if *epochRounds > 0 {
			m := &dpbyz.MembershipSpec{
				MinWorkers:  *minWorkers,
				MaxWorkers:  *maxWorkers,
				FRatio:      *fRatio,
				EpochRounds: *epochRounds,
			}
			if m.MinWorkers == 0 {
				m.MinWorkers = s.GAR.N
			}
			if m.MaxWorkers == 0 {
				m.MaxWorkers = s.GAR.N
			}
			if m.FRatio == 0 && s.GAR.F > 0 {
				// Default to the declared (n, f): the smallest ratio whose
				// floor at n recovers f.
				m.FRatio = float64(s.GAR.F) / float64(s.GAR.N)
			}
			s.Membership = m
		}
	}
	if *dumpSpec {
		b, err := s.JSON()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}

	var opts []dpbyz.Option
	if *ckptPath != "" {
		opts = append(opts, dpbyz.WithCheckpointFile(*ckptPath, *ckptEvery))
	}
	if *resume != "" {
		opts = append(opts, dpbyz.WithResumeFile(*resume))
	}
	if *jsonl != "" {
		out := os.Stderr
		if *jsonl != "-" {
			f, err := os.Create(*jsonl)
			if err != nil {
				return fmt.Errorf("create jsonl file: %w", err)
			}
			defer f.Close()
			out = f
		}
		sink := dpbyz.NewJSONLSink(out)
		// The sink buffers; an unflushed close truncates the final lines.
		defer func() {
			if cerr := sink.Close(); cerr != nil && retErr == nil {
				retErr = fmt.Errorf("flush jsonl: %w", cerr)
			}
		}()
		opts = append(opts, dpbyz.WithObserver(sink))
	}
	if *progress > 0 {
		opts = append(opts, dpbyz.WithObserver(dpbyz.NewProgressSink(os.Stderr, *progress)))
	}

	var be dpbyz.Backend
	switch *backend {
	case "local":
		opts = append(opts, dpbyz.WithParallel())
		be = &dpbyz.LocalBackend{}
	case "cluster":
		be = &dpbyz.ClusterBackend{}
	default:
		return fmt.Errorf("unknown backend %q (local|cluster)", *backend)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := be.Run(ctx, s, opts...)
	if err != nil {
		// A clean interrupt is a success: the backend flushed a final
		// checkpoint of the completed prefix on the way out (when -checkpoint
		// is set), so the run resumes with -resume. A failed snapshot flush
		// does not match context.Canceled and stays a nonzero exit.
		if ctx.Err() != nil && errors.Is(err, context.Canceled) {
			if *ckptPath != "" {
				fmt.Fprintf(os.Stderr, "interrupted; resumable checkpoint flushed to %s\n", *ckptPath)
			} else {
				fmt.Fprintln(os.Stderr, "interrupted")
			}
			return nil
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "final: loss=%.6g acc=%.4f\n",
		res.History.FinalLoss(), res.History.FinalAccuracy())
	if res.Cluster != nil {
		fmt.Fprintf(os.Stderr, "cluster: accepted=%d discarded=%d missed=%d credited=%d\n",
			res.Cluster.Accepted, res.Cluster.Discarded, res.Cluster.Missed, res.Cluster.Credited)
		for _, e := range res.Cluster.Epochs {
			fmt.Fprintf(os.Stderr, "epoch %d: n=%d f=%d rounds=%d accepted=%d missed=%d\n",
				e.Epoch, e.N, e.F, e.Rounds, e.Accepted, e.Missed)
		}
	}
	if s.Mechanism != nil && s.Mechanism.Epsilon > 0 && s.Mechanism.Delta > 0 {
		bud := dpbyz.Budget{Epsilon: s.Mechanism.Epsilon, Delta: s.Mechanism.Delta}
		if total, err := dpbyz.BasicComposition(bud, s.Steps); err == nil {
			fmt.Fprintf(os.Stderr,
				"per-worker privacy spend (basic composition over %d releases): eps=%.3g delta=%.3g\n",
				s.Steps, total.Epsilon, total.Delta)
		}
	}
	if *savePath != "" {
		name := s.Model.Name
		if name == "" {
			name = "logistic-mse"
		}
		feat := s.Data.Features
		if feat == 0 {
			feat = 68
		}
		note := fmt.Sprintf("spec=%s gar=%s backend=%s", s.Name, s.GAR.Name, res.Backend)
		err := checkpoint.Save(*savePath, &checkpoint.Checkpoint{
			Model:        name,
			Features:     feat,
			Hidden:       s.Model.Hidden,
			Params:       res.Params,
			StepsTrained: s.Steps,
			Seed:         s.Seed,
			Note:         note,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "checkpoint written to %s\n", *savePath)
	}
	return res.History.WriteCSV(os.Stdout)
}

// mlpHidden returns the hidden width to record: only MLPs have one.
func mlpHidden(modelName string, hidden int) int {
	if modelName == "mlp" {
		return hidden
	}
	return 0
}
