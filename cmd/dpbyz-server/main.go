// Command dpbyz-server runs the networked parameter server half of a run
// spec: it waits for the spec's n workers (dpbyz-worker processes sharing
// the same spec file), drives the configured rounds aggregating gradients
// with the spec's GAR, and prints the final model as CSV to stdout.
//
// The scenario lives entirely in the spec file; the flags carry only
// placement — where to listen, which transport, wire limits:
//
//	dpbyz-train -gar mda -n 5 -f 1 -steps 200 -dump-spec > run.json
//	dpbyz-server -spec run.json -addr 127.0.0.1:7001
//
// Periodic -checkpoint snapshots let an interrupted training resume with
// -resume once the workers reconnect.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"dpbyz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dpbyz-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		specPath  = flag.String("spec", "", "JSON run-spec file (required; generate one with dpbyz-train -dump-spec)")
		addr      = flag.String("addr", "127.0.0.1:7001", "listen address")
		transport = flag.String("transport", "tcp", "wire transport (tcp; the in-process chan transport is embed/test-only)")
		maxFrame  = flag.Int("max-frame-mb", 0, "frame size cap in MiB (0 = default 64)")
		timeout   = flag.Duration("round-timeout", 10*time.Second, "per-round gradient deadline")
		ckptPath  = flag.String("checkpoint", "", "write a resumable server snapshot to this path")
		ckptEvery = flag.Int("checkpoint-every", 100, "snapshot every k rounds (with -checkpoint)")
		resume    = flag.String("resume", "", "resume from a snapshot written via -checkpoint")
		verbose   = flag.Bool("v", false, "log per-round progress")
	)
	flag.Parse()

	if *transport != "tcp" {
		return fmt.Errorf("unknown transport %q (cross-process deployments are TCP; "+
			"use dpbyz.ClusterBackend with a chan transport for in-process runs)", *transport)
	}
	if *specPath == "" {
		return fmt.Errorf("missing -spec (generate one with dpbyz-train -dump-spec)")
	}
	s, err := dpbyz.LoadSpec(*specPath)
	if err != nil {
		return err
	}

	opts := []dpbyz.Option{
		dpbyz.WithAddr(*addr),
		dpbyz.WithTransport(dpbyz.TCPTransport{}),
		dpbyz.WithMaxFrameBytes(*maxFrame << 20),
		dpbyz.WithRoundTimeout(*timeout),
	}
	if *verbose {
		opts = append(opts, dpbyz.WithLogf(log.Printf))
	} else {
		fmt.Fprintf(os.Stderr, "listening on %s, waiting for %d workers\n", *addr, s.GAR.N)
	}
	if *ckptPath != "" {
		opts = append(opts, dpbyz.WithCheckpointFile(*ckptPath, *ckptEvery))
	}
	if *resume != "" {
		opts = append(opts, dpbyz.WithResumeFile(*resume))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := dpbyz.ServeSpec(ctx, *s, opts...)
	if err != nil {
		// A clean interrupt is a success: the server flushed a final snapshot
		// of the completed rounds on the way out (with -checkpoint), so the
		// run resumes with -resume once the workers reconnect. A failed
		// snapshot flush does not match context.Canceled and stays nonzero.
		if ctx.Err() != nil && errors.Is(err, context.Canceled) {
			if *ckptPath != "" {
				fmt.Fprintf(os.Stderr, "interrupted; resumable checkpoint flushed to %s\n", *ckptPath)
			} else {
				fmt.Fprintln(os.Stderr, "interrupted")
			}
			return nil
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "done: %d rounds, %d missed gradients, %d discarded\n",
		res.History.Len(), res.Cluster.Missed, res.Cluster.Discarded)
	for _, e := range res.Cluster.Epochs {
		fmt.Fprintf(os.Stderr, "epoch %d: n=%d f=%d rounds=%d accepted=%d missed=%d\n",
			e.Epoch, e.N, e.F, e.Rounds, e.Accepted, e.Missed)
	}
	for i, w := range res.Params {
		fmt.Println(strconv.Itoa(i) + "," + strconv.FormatFloat(w, 'g', 17, 64))
	}
	return nil
}
