package gar

import (
	"testing"

	"dpbyz/internal/randx"
	"dpbyz/internal/vecmath"
)

// sketchedFixtures is the shortlist property battery: Gaussian clouds,
// planted-outlier clouds, and tie-dense colluder clouds (identical Byzantine
// submissions).
func sketchedFixtures() []struct {
	name  string
	grads [][]float64
	f     int
} {
	type fixture = struct {
		name  string
		grads [][]float64
		f     int
	}
	var fixtures []fixture
	for seed := uint64(1); seed <= 5; seed++ {
		cloud, _ := gaussianCloud(randx.New(seed), propertyN, propertyD, 1)
		fixtures = append(fixtures,
			fixture{"gaussian", cloud, propertyF},
			fixture{"outliers", cloudWithOutliers(13, 2, 31, 1, 0.3, 25, seed), 2},
		)
	}
	tied, _ := gaussianCloud(randx.New(99), 11, 16, 1)
	for i := 1; i < 5; i++ {
		copy(tied[i], tied[0])
	}
	fixtures = append(fixtures, fixture{"colluders", tied, 2})
	return fixtures
}

// TestSketchedMatchesExactOnBattery is the tentpole property test: on every
// battery fixture, the JL-sketched wrapper (sketch-space shortlist + exact
// re-check) selects exactly what the exact kernel selects, so the outputs
// are bit-identical.
func TestSketchedMatchesExactOnBattery(t *testing.T) {
	for _, inner := range []string{"krum", "multikrum", "bulyan", "mda"} {
		for _, lanes32 := range []bool{false, true} {
			for _, fx := range sketchedFixtures() {
				if inner == "mda" && fx.name != "outliers" {
					// MDA's subset objective has no neighbourhood-shaped
					// answer on an isotropic cloud or under heavy ties:
					// exact enumeration finds min-diameter subsets that are
					// not any center's nearest neighbourhood, so even the
					// exact greedy heuristic diverges there. The shortlist
					// property is only claimed where the outlier structure
					// is separable.
					continue
				}
				n := len(fx.grads)
				d := len(fx.grads[0])
				exact, err := New(inner, n, fx.f)
				if err != nil {
					continue // fixture shape outside the rule's constraint
				}
				sk, err := NewSketched(inner, n, fx.f, SketchOptions{
					SketchDim: 8, Seed: 42, Lanes32: lanes32,
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", inner, fx.name, err)
				}
				want, err := exact.Aggregate(fx.grads)
				if err != nil {
					t.Fatalf("%s/%s exact: %v", inner, fx.name, err)
				}
				got := make([]float64, d)
				if err := sk.AggregateInto(got, fx.grads); err != nil {
					t.Fatalf("%s/%s sketched: %v", inner, fx.name, err)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("%s lanes32=%v on %s: coordinate %d differs: %v != %v",
							sk.Name(), lanes32, fx.name, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// driftingCohort yields rounds of submissions that drift by small momentum
// steps, with an optional large adversarial jump at jumpRound.
func driftingCohort(t *testing.T, n, d, rounds int, stepSigma float64, jumpRound int, seed uint64) [][][]float64 {
	t.Helper()
	rng := randx.New(seed)
	cur := make([][]float64, n)
	for i := range cur {
		cur[i] = make([]float64, d)
		rng.NormalVec(cur[i], 1)
	}
	out := make([][][]float64, rounds)
	step := make([]float64, d)
	for r := range out {
		sigma := stepSigma
		if r == jumpRound {
			sigma = 50 * stepSigma // adversarial delta: invalidate the bounds
		}
		snap := make([][]float64, n)
		for i := range cur {
			rng.NormalVec(step, sigma)
			vecmath.AddInto(cur[i], cur[i], step)
			snap[i] = append([]float64(nil), cur[i]...)
		}
		out[r] = snap
	}
	return out
}

// TestIncrementalBitIdenticalAcrossRounds pins the incremental mode's core
// guarantee: across a drifting multi-round trajectory — including an
// adversarial jump large enough to invalidate the drift bounds mid-window —
// every round's output is bit-identical to the exact rule's.
func TestIncrementalBitIdenticalAcrossRounds(t *testing.T) {
	const n, f, d, rounds = 13, 2, 64, 12
	for _, inner := range []string{"krum", "multikrum", "bulyan"} {
		exact, err := New(inner, n, f)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := NewSketched(inner, n, f, SketchOptions{Incremental: true})
		if err != nil {
			t.Fatal(err)
		}
		cohort := driftingCohort(t, n, d, rounds, 0.02, 7, uint64(len(inner)))
		got := make([]float64, d)
		for r, grads := range cohort {
			sk.BeginRound(r)
			want, err := exact.Aggregate(grads)
			if err != nil {
				t.Fatalf("%s round %d exact: %v", inner, r, err)
			}
			if err := sk.AggregateInto(got, grads); err != nil {
				t.Fatalf("%s round %d: %v", inner, r, err)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s round %d: coordinate %d differs: %v != %v",
						sk.Name(), r, j, got[j], want[j])
				}
			}
		}
		if sk.Refreshes() < 2 {
			t.Errorf("%s: expected the adversarial jump to force a refresh beyond the initial anchor, got %d",
				sk.Name(), sk.Refreshes())
		}
	}
}

// TestIncrementalDriftTriggersRefresh drives adversarial per-round deltas
// that exceed the drift threshold every round and asserts the full-recompute
// escape hatch fires before the bounds can diverge: refresh count tracks the
// round count, and the output stays pinned to the exact rule throughout.
func TestIncrementalDriftTriggersRefresh(t *testing.T) {
	const n, f, d, rounds = 13, 2, 32, 6
	exact, err := New("krum", n, f)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewSketched("krum", n, f, SketchOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every round's step is comparable to the cohort diameter, far past the
	// DefaultDriftFraction threshold.
	cohort := driftingCohort(t, n, d, rounds, 2.0, -1, 7)
	got := make([]float64, d)
	for r, grads := range cohort {
		sk.BeginRound(r)
		want, err := exact.Aggregate(grads)
		if err != nil {
			t.Fatal(err)
		}
		if err := sk.AggregateInto(got, grads); err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("round %d: diverged at coordinate %d before refresh", r, j)
			}
		}
	}
	if sk.Refreshes() < rounds {
		t.Errorf("adversarial drift every round must refresh every round: %d refreshes over %d rounds",
			sk.Refreshes(), rounds)
	}

	// Small steps for contrast: the bounds stay tight and the state must NOT
	// refresh every round (that would degenerate to the exact kernel).
	sk2, err := NewSketched("krum", n, f, SketchOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	quiet := driftingCohort(t, n, d, rounds, 0.001, -1, 11)
	for r, grads := range quiet {
		sk2.BeginRound(r)
		if err := sk2.AggregateInto(got, grads); err != nil {
			t.Fatal(err)
		}
	}
	if sk2.Refreshes() != 1 {
		t.Errorf("quiet trajectory should keep the initial anchor: %d refreshes", sk2.Refreshes())
	}
}

// TestSketchedRoundJumpResets pins the RoundAware contract: a
// non-consecutive round (resume / rollback) discards the incremental
// reference, forcing a fresh anchor on the next aggregation.
func TestSketchedRoundJumpResets(t *testing.T) {
	const n, f, d = 13, 2, 16
	sk, err := NewSketched("krum", n, f, SketchOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	grads := intoTestGrads(d, 3)
	dst := make([]float64, d)
	sk.BeginRound(0)
	if err := sk.AggregateInto(dst, grads); err != nil {
		t.Fatal(err)
	}
	sk.BeginRound(1)
	if err := sk.AggregateInto(dst, grads); err != nil {
		t.Fatal(err)
	}
	if sk.Refreshes() != 1 {
		t.Fatalf("consecutive rounds should keep the anchor: %d refreshes", sk.Refreshes())
	}
	sk.BeginRound(5) // jump: checkpoint resume
	if err := sk.AggregateInto(dst, grads); err != nil {
		t.Fatal(err)
	}
	if sk.Refreshes() != 2 {
		t.Errorf("round jump must re-anchor: %d refreshes", sk.Refreshes())
	}
}

// TestSketchedConstructorValidation covers the wrapper's error paths and
// naming.
func TestSketchedConstructorValidation(t *testing.T) {
	if _, err := NewSketched("median", 13, 2, SketchOptions{}); err == nil {
		t.Error("accepted unsupported inner rule median")
	}
	if _, err := NewSketched("mda", 13, 2, SketchOptions{Incremental: true}); err == nil {
		t.Error("accepted incremental mda (no per-row score to bound)")
	}
	if _, err := NewSketched("krum", 13, 2, SketchOptions{Incremental: true, Lanes32: true}); err == nil {
		t.Error("accepted float32 lanes in the exact incremental mode")
	}
	if _, err := NewSketched("krum", 13, 2, SketchOptions{SketchDim: -1}); err == nil {
		t.Error("accepted negative sketch dimension")
	}
	if _, err := NewSketched("krum", 13, 2, SketchOptions{Shortlist: -1}); err == nil {
		t.Error("accepted negative shortlist")
	}
	if _, err := NewSketched("krum", 7, 3, SketchOptions{}); err == nil {
		t.Error("accepted krum inner constraint violation n <= 2f+2")
	}
	sk, err := NewSketched("krum", 13, 2, SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sk.Name() != "sketched(krum)" {
		t.Errorf("Name() = %q", sk.Name())
	}
	inc, err := NewSketched("bulyan", 13, 2, SketchOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Name() != "incremental(bulyan)" {
		t.Errorf("Name() = %q", inc.Name())
	}
	if !SketchSupported("mda") || SketchSupported("median") {
		t.Error("SketchSupported wrong")
	}
	if !IncrementalSupported("bulyan") || IncrementalSupported("mda") {
		t.Error("IncrementalSupported wrong")
	}
}

// TestSketchedZeroAllocs extends the steady-state allocation gate to the
// sketched wrapper: after warm-up (pool, lazy sketcher, incremental state)
// no mode may allocate per call.
func TestSketchedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops entries under the race detector; alloc counts are meaningless")
	}
	vecmath.SetParallelism(1)
	defer vecmath.SetParallelism(0)
	const n, f, d = 13, 2, 128
	grads := intoTestGrads(d, 33)
	dst := make([]float64, d)
	builds := []struct {
		name string
		opt  SketchOptions
	}{
		{"jl", SketchOptions{}},
		{"jl-lanes32", SketchOptions{Lanes32: true}},
		{"incremental", SketchOptions{Incremental: true}},
	}
	for _, inner := range []string{"krum", "multikrum", "bulyan", "mda"} {
		for _, b := range builds {
			if b.opt.Incremental && !IncrementalSupported(inner) {
				continue
			}
			sk, err := NewSketched(inner, n, f, b.opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := sk.AggregateInto(dst, grads); err != nil {
					t.Fatalf("%s %s warm-up: %v", sk.Name(), b.name, err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if err := sk.AggregateInto(dst, grads); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s (%s) allocates %v objects per steady-state call", sk.Name(), b.name, allocs)
			}
		}
	}
}
