package simulate

import (
	"context"
	"errors"
	"math"
	"testing"

	"dpbyz/internal/attack"
	"dpbyz/internal/data"
	"dpbyz/internal/dp"
	"dpbyz/internal/gar"
	"dpbyz/internal/model"
	"dpbyz/internal/vecmath"
)

// smallTask returns a quick 10-feature classification task and its model.
func smallTask(t *testing.T) (*data.Dataset, *data.Dataset, model.Model) {
	t.Helper()
	ds, err := data.SyntheticPhishing(data.SyntheticPhishingConfig{
		N: 1200, Features: 10, NoiseRate: 0.02, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic split (the generator is already shuffled).
	train, err := ds.Subset(seqInts(0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	test, err := ds.Subset(seqInts(1000, 1200))
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticMSE(10)
	if err != nil {
		t.Fatal(err)
	}
	return train, test, m
}

func seqInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func baseConfig(t *testing.T, g gar.GAR) Config {
	t.Helper()
	train, test, m := smallTask(t)
	return Config{
		Model:         m,
		Train:         train,
		Test:          test,
		GAR:           g,
		Steps:         120,
		BatchSize:     25,
		LearningRate:  2,
		Momentum:      0.9,
		ClipNorm:      0.01,
		Seed:          1,
		AccuracyEvery: 40,
	}
}

func mustGAR(t *testing.T, name string, n, f int) gar.GAR {
	t.Helper()
	g, err := gar.New(name, n, f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidate(t *testing.T) {
	valid := baseConfig(t, mustGAR(t, "average", 5, 0))
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil model", mutate: func(c *Config) { c.Model = nil }},
		{name: "nil dataset", mutate: func(c *Config) { c.Train = nil }},
		{name: "nil gar", mutate: func(c *Config) { c.GAR = nil }},
		{name: "zero steps", mutate: func(c *Config) { c.Steps = 0 }},
		{name: "zero batch", mutate: func(c *Config) { c.BatchSize = 0 }},
		{name: "zero lr", mutate: func(c *Config) { c.LearningRate = 0 }},
		{name: "momentum one", mutate: func(c *Config) { c.Momentum = 1 }},
		{name: "negative clip", mutate: func(c *Config) { c.ClipNorm = -1 }},
		{name: "bad init dim", mutate: func(c *Config) { c.InitParams = []float64{1} }},
		{name: "attack with f=0", mutate: func(c *Config) { c.Attack = attack.NewALIE() }},
		{name: "feature mismatch", mutate: func(c *Config) {
			m, err := model.NewLogisticMSE(3)
			if err != nil {
				t.Fatal(err)
			}
			c.Model = m
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig(t, mustGAR(t, "average", 5, 0))
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestHonestTrainingConverges(t *testing.T) {
	cfg := baseConfig(t, mustGAR(t, "average", 5, 0))
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Len() != cfg.Steps {
		t.Fatalf("history length = %d", res.History.Len())
	}
	first := res.History.Record(0).Loss
	minLoss, _ := res.History.MinLoss()
	if minLoss >= first {
		t.Errorf("loss did not improve: first %v, min %v", first, minLoss)
	}
	if acc := res.History.FinalAccuracy(); acc < 0.8 {
		t.Errorf("final accuracy = %v, want >= 0.8", acc)
	}
	if !vecmath.AllFinite(res.Params) {
		t.Error("final params not finite")
	}
}

func TestDeterminismAcrossRunsAndParallelism(t *testing.T) {
	cfg := baseConfig(t, mustGAR(t, "mda", 7, 3))
	cfg.Attack = attack.NewALIE()
	mech, err := dp.NewGaussian(cfg.ClipNorm, cfg.BatchSize, dp.Budget{Epsilon: 0.5, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mechanism = mech
	cfg.Steps = 40

	run := func(parallel bool) *Result {
		c := cfg
		c.Parallel = parallel
		res, err := Run(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(false), run(false), run(true)
	if !vecmath.ApproxEqual(a.Params, b.Params, 0) {
		t.Error("two serial runs with the same seed differ")
	}
	if !vecmath.ApproxEqual(a.Params, c.Params, 0) {
		t.Error("parallel run differs from serial run")
	}
}

func TestSeedChangesTrajectory(t *testing.T) {
	cfg := baseConfig(t, mustGAR(t, "average", 5, 0))
	cfg.Steps = 20
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.ApproxEqual(a.Params, b.Params, 0) {
		t.Error("different seeds produced identical parameters")
	}
}

func TestMDAResistsAttackAverageDoesNot(t *testing.T) {
	const n, f = 11, 5
	// Attacked averaging: ALIE drags the model; attacked MDA stays close to
	// the honest baseline. Compare final losses on the same task.
	runWith := func(g gar.GAR, atk attack.Attack) float64 {
		cfg := baseConfig(t, g)
		cfg.Attack = atk
		cfg.Steps = 150
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.History.FinalLoss()
	}
	honest := runWith(mustGAR(t, "average", n, 0), nil)
	attackedMDA := runWith(mustGAR(t, "mda", n, f), attack.NewSignFlip())
	if attackedMDA > honest+0.1 {
		t.Errorf("MDA under attack lost %v vs honest %v", attackedMDA, honest)
	}
}

func TestDPNoiseDegradesSmallBatches(t *testing.T) {
	// Paper Fig. 3: with a small batch, DP noise alone visibly hampers
	// training relative to the noiseless run.
	cfg := baseConfig(t, mustGAR(t, "average", 11, 0))
	cfg.BatchSize = 5
	cfg.Steps = 150
	clean, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := dp.NewGaussian(cfg.ClipNorm, cfg.BatchSize, dp.Budget{Epsilon: 0.2, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mechanism = mech
	noisy, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cleanMin, _ := clean.History.MinLoss()
	noisyMin, _ := noisy.History.MinLoss()
	if noisyMin <= cleanMin {
		t.Errorf("DP run min loss %v not worse than clean %v", noisyMin, cleanMin)
	}
}

func TestAccountantCountsReleases(t *testing.T) {
	bud := dp.Budget{Epsilon: 0.5, Delta: 1e-6}
	acct, err := dp.NewAccountant(bud)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, mustGAR(t, "mda", 7, 2))
	cfg.Attack = attack.NewFallOfEmpires()
	mech, err := dp.NewGaussian(cfg.ClipNorm, cfg.BatchSize, bud)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mechanism = mech
	cfg.Accountant = acct
	cfg.Steps = 10
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// 5 honest workers release once per step.
	if got, want := acct.Steps(), 10*5; got != want {
		t.Errorf("accountant recorded %d, want %d", got, want)
	}
}

func TestContextCancellation(t *testing.T) {
	cfg := baseConfig(t, mustGAR(t, "average", 5, 0))
	cfg.Steps = 100000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
}

func TestDivergenceDetected(t *testing.T) {
	train, test, _ := smallTask(t)
	m, err := model.NewLinearRegression(10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model:        m,
		Train:        train,
		Test:         test,
		GAR:          mustGAR(t, "average", 5, 0),
		Steps:        5000,
		BatchSize:    25,
		LearningRate: 1e6, // hopelessly unstable
		Momentum:     0.99,
		Seed:         1,
	}
	if _, err := Run(context.Background(), cfg); !errors.Is(err, ErrDiverged) {
		t.Errorf("error = %v, want ErrDiverged", err)
	}
}

func TestAccuracyCadence(t *testing.T) {
	cfg := baseConfig(t, mustGAR(t, "average", 5, 0))
	cfg.Steps = 90
	cfg.AccuracyEvery = 30
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	measured := 0
	for _, r := range res.History.Records() {
		if !math.IsNaN(r.Accuracy) {
			measured++
			if r.Step%30 != 0 && r.Step != cfg.Steps-1 {
				t.Errorf("accuracy measured at unexpected step %d", r.Step)
			}
		}
	}
	// Steps 0, 30, 60 plus the final step 89.
	if measured != 4 {
		t.Errorf("accuracy measured %d times, want 4", measured)
	}
}

func TestVNRatioRecorded(t *testing.T) {
	cfg := baseConfig(t, mustGAR(t, "mda", 7, 2))
	cfg.Attack = attack.NewALIE()
	cfg.Steps = 20
	cfg.VNRatioEvery = 10
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, r := range res.History.Records() {
		if !math.IsNaN(r.VNRatio) {
			count++
			if r.VNRatio < 0 {
				t.Errorf("negative VN ratio %v", r.VNRatio)
			}
		}
	}
	if count != 2 {
		t.Errorf("VN ratio recorded %d times, want 2", count)
	}
}

func TestInitParamsRespected(t *testing.T) {
	cfg := baseConfig(t, mustGAR(t, "average", 5, 0))
	cfg.Steps = 1
	cfg.LearningRate = 1e-12 // effectively freeze training
	init := make([]float64, cfg.Model.Dim())
	for i := range init {
		init[i] = 0.25
	}
	cfg.InitParams = init
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.ApproxEqual(res.Params, init, 1e-6) {
		t.Errorf("params %v drifted from init", res.Params[:3])
	}
	// The engine must not alias the caller's slice.
	if &res.Params[0] == &init[0] {
		t.Error("result aliases InitParams")
	}
}

func TestMeanEstimationTask(t *testing.T) {
	ds, center, err := data.GaussianMean(data.GaussianMeanConfig{N: 5000, Dim: 8, Sigma: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewMeanEstimation(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model:        m,
		Train:        ds,
		GAR:          mustGAR(t, "average", 5, 0),
		Steps:        300,
		BatchSize:    20,
		LearningRate: 0.1,
		Momentum:     0,
		Seed:         4,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sub := m.Suboptimality(res.Params, center); sub > 0.01 {
		t.Errorf("mean estimation suboptimality = %v", sub)
	}
}
